package combine

import (
	"math"
	"testing"

	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

func mustSP(t *testing.T, pred string, intensity float64) hypre.ScoredPred {
	t.Helper()
	p, err := hypre.NewScoredPred(pred, intensity)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// testDB builds the Table 6 DBLP instance with a dblp_author link table —
// the same fixture the paper's worked examples use.
func testDB(t *testing.T) *relstore.DB {
	t.Helper()
	return buildTestDB()
}

// buildTestDB is the *testing.T-free builder shared with the benchmarks.
func buildTestDB() *relstore.DB {
	db := relstore.NewDB()
	dblp, err := db.CreateTable("dblp",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "venue", Kind: predicate.KindString},
		relstore.Column{Name: "year", Kind: predicate.KindInt},
	)
	if err != nil {
		panic(err)
	}
	papers := []struct {
		pid   int64
		venue string
		year  int64
	}{
		{1, "VLDB", 2000}, {2, "VLDB", 2006}, {3, "PVLDB", 2010},
		{4, "PVLDB", 2010}, {5, "PVLDB", 2009}, {6, "SIGMOD", 2010},
		{7, "SIGMOD", 2008}, {8, "INFOCOM", 2010}, {9, "INFOCOM", 2007},
	}
	for _, p := range papers {
		dblp.Insert(predicate.Int(p.pid), predicate.String(p.venue), predicate.Int(p.year))
	}
	da, err := db.CreateTable("dblp_author",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "aid", Kind: predicate.KindInt},
	)
	if err != nil {
		panic(err)
	}
	links := []struct{ pid, aid int64 }{
		{1, 1}, {1, 2}, {2, 2}, {3, 3}, {4, 4}, {5, 2},
		{6, 5}, {7, 1}, {8, 6}, {9, 6}, {9, 2},
	}
	for _, l := range links {
		da.Insert(predicate.Int(l.pid), predicate.Int(l.aid))
	}
	db.Table("dblp").BuildIndex("venue")
	db.Table("dblp_author").BuildIndex("pid")
	return db
}

func baseQuery(where predicate.Predicate) relstore.Query {
	return relstore.Query{
		From:  "dblp",
		Join:  &relstore.JoinSpec{Table: "dblp_author", LeftCol: "pid", RightCol: "pid"},
		Where: where,
	}
}

func testEvaluator(t *testing.T) *Evaluator {
	return NewEvaluator(testDB(t), baseQuery, "dblp.pid")
}

func TestComboAndOrStructure(t *testing.T) {
	v1 := mustSP(t, `dblp.venue="INFOCOM"`, 0.23)
	a1 := mustSP(t, `dblp_author.aid=2`, 0.19)
	a2 := mustSP(t, `dblp_author.aid=6`, 0.14)
	c := NewCombo(v1).And(a1).Or(a2)
	if len(c.Groups) != 2 {
		t.Fatalf("groups = %d", len(c.Groups))
	}
	if len(c.Groups[1]) != 2 {
		t.Fatalf("author group = %d members", len(c.Groups[1]))
	}
	if c.NumPreds() != 3 {
		t.Errorf("NumPreds = %d", c.NumPreds())
	}
	if !c.HasAttr("dblp.venue") || !c.HasAttr("dblp_author.aid") || c.HasAttr("x") {
		t.Error("HasAttr wrong")
	}
	if !c.HasPred(`dblp_author.aid=6`) || c.HasPred(`dblp_author.aid=99`) {
		t.Error("HasPred wrong")
	}
	if !c.HasAnd() || NewCombo(v1).HasAnd() {
		t.Error("HasAnd wrong")
	}
}

func TestComboOrWithoutMatchingGroupDegeneratesToAnd(t *testing.T) {
	v1 := mustSP(t, `dblp.venue="VLDB"`, 0.5)
	a1 := mustSP(t, `dblp_author.aid=2`, 0.3)
	c := NewCombo(v1).Or(a1)
	if len(c.Groups) != 2 {
		t.Fatalf("expected new group, got %v", c.Groups)
	}
}

func TestComboImmutability(t *testing.T) {
	v1 := mustSP(t, `dblp.venue="VLDB"`, 0.5)
	a1 := mustSP(t, `dblp_author.aid=2`, 0.3)
	a2 := mustSP(t, `dblp_author.aid=6`, 0.2)
	base := NewCombo(v1).And(a1)
	_ = base.Or(a2)
	if base.NumPreds() != 2 {
		t.Error("Or mutated the receiver")
	}
	_ = base.And(a2)
	if len(base.Groups) != 2 {
		t.Error("And mutated the receiver")
	}
}

func TestComboIntensity(t *testing.T) {
	v1 := mustSP(t, `dblp.venue="INFOCOM"`, 0.23)
	a1 := mustSP(t, `dblp_author.aid=2`, 0.19)
	a2 := mustSP(t, `dblp_author.aid=6`, 0.14)
	c := NewCombo(v1).And(a1).Or(a2)
	want := hypre.FAnd(0.23, hypre.FOrSeq(0.19, 0.14))
	if got := c.Intensity(); !almostEq(got, want) {
		t.Errorf("Intensity = %v, want %v", got, want)
	}
	// Pure AND combo matches FAndAll.
	c2 := NewCombo(v1).And(a1)
	if got := c2.Intensity(); !almostEq(got, hypre.FAndAll(0.23, 0.19)) {
		t.Errorf("AND intensity = %v", got)
	}
}

func TestComboWhereEvaluates(t *testing.T) {
	v1 := mustSP(t, `dblp.venue="INFOCOM"`, 0.23)
	a2 := mustSP(t, `dblp_author.aid=6`, 0.14)
	c := NewCombo(v1).And(a2)
	r := predicate.MapRow{
		"dblp.venue":      predicate.String("INFOCOM"),
		"dblp_author.aid": predicate.Int(6),
	}
	if !c.Where().Eval(r) {
		t.Error("combo WHERE should match")
	}
}

func TestComboKeyCanonical(t *testing.T) {
	v1 := mustSP(t, `dblp.venue="A"`, 0.5)
	a1 := mustSP(t, `dblp_author.aid=1`, 0.4)
	c1 := NewCombo(v1).And(a1)
	c2 := NewCombo(a1).And(v1)
	if c1.Key() != c2.Key() {
		t.Errorf("keys differ: %q vs %q", c1.Key(), c2.Key())
	}
	a2 := mustSP(t, `dblp_author.aid=2`, 0.3)
	or1 := NewCombo(a1).Or(a2)
	or2 := NewCombo(a2).Or(a1)
	if or1.Key() != or2.Key() {
		t.Errorf("OR keys differ: %q vs %q", or1.Key(), or2.Key())
	}
	if c1.Key() == or1.Key() {
		t.Error("distinct combos share a key")
	}
}

func TestRecordsHelpers(t *testing.T) {
	rs := Records{
		{NumPreds: 2, NumTuples: 0, Intensity: 0.9},
		{NumPreds: 2, NumTuples: 3, Intensity: 0.5},
		{NumPreds: 5, NumTuples: 1, Intensity: 0.7},
	}
	if got := rs.FilterApplicable(); len(got) != 2 {
		t.Errorf("FilterApplicable = %d", len(got))
	}
	if got := rs.ByNumPreds(2); len(got) != 2 {
		t.Errorf("ByNumPreds = %d", len(got))
	}
	if got := rs.MaxIntensity(); got != 0.9 {
		t.Errorf("MaxIntensity = %v", got)
	}
	if got := (Records{}).MaxIntensity(); got != 0 {
		t.Errorf("empty MaxIntensity = %v", got)
	}
}
