package combine

import (
	"hypre/internal/hypre"
	"hypre/internal/obs"
)

// PEPSTraced is PEPS under a trace span: the DFS runs inside a
// StagePEPS span and its expansion counters (anchors visited, combinations
// expanded — each one bitmap intersection) land in tr's engine counters.
// tr may be nil; the algorithm is unchanged.
func PEPSTraced(prefs []hypre.ScoredPred, pt *PairTable, ev *Evaluator, k int, variant Variant, tr *obs.Trace) (TopKResult, error) {
	sp := tr.StartSpan(obs.StagePEPS)
	res, err := PEPS(prefs, pt, ev, k, variant)
	tr.EndSpan(sp)
	if err == nil {
		tr.AddPEPS(int64(res.AnchorsUsed), int64(res.CombosExpanded))
		tr.AddPairs(int64(res.CombosExpanded))
	}
	return res, err
}

// BuildPairTableTraced is BuildPairTable under a StagePairBuild span, with
// the pair count (one intersection cardinality each) recorded.
func BuildPairTableTraced(prefs []hypre.ScoredPred, ev *Evaluator, tr *obs.Trace) (*PairTable, error) {
	sp := tr.StartSpan(obs.StagePairBuild)
	pt, err := BuildPairTable(prefs, ev)
	tr.EndSpan(sp)
	if err == nil {
		tr.AddPairs(int64(len(pt.Pairs)))
	}
	return pt, err
}
