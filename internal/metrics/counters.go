package metrics

import "sync/atomic"

// CacheCounters is the serving-tier observability surface: every counter
// the result/plan cache increments on its hot path, lock-free. One instance
// is shared between the cache shards and the server wrapper; the cacheserve
// bench snapshots it into the BENCH_*.json record.
type CacheCounters struct {
	// Hits counts result-cache hits (answer returned without evaluation).
	Hits atomic.Int64
	// Misses counts requests that found no result entry and led their
	// single-flight group. A miss is served either by a cached compiled
	// plan (PlanHits) or by an evaluation against the store (Evaluations);
	// for leaders Misses == PlanHits + Evaluations.
	Misses atomic.Int64
	// PlanHits counts misses answered from a cached compiled plan (built
	// TA lists re-ranked for a new k) instead of a store evaluation.
	PlanHits atomic.Int64
	// Evaluations counts store evaluations actually run on behalf of
	// misses (scans/streams/list builds; the work PlanHits avoids).
	// Stale-bypass evaluations are tracked by StaleBypasses, not here.
	Evaluations atomic.Int64
	// SharedWaits counts requests that piggybacked on another session's
	// in-flight evaluation of the same fingerprint (single-flight dedup).
	SharedWaits atomic.Int64
	// Evictions counts entries dropped by the byte-budget LRU.
	Evictions atomic.Int64
	// Invalidated counts entries dropped because a mutation batch moved
	// the membership of a predicate they depend on.
	Invalidated atomic.Int64
	// PlanRepairs counts compiled-plan entries whose TA lists were patched
	// in place by a maintenance sync (topk.Lists.ApplyDelta) instead of
	// being invalidated.
	PlanRepairs atomic.Int64
	// StaleBypasses counts requests served uncached because the store's
	// epoch stamp had advanced past the cache's last synced state.
	StaleBypasses atomic.Int64
	// FootprintScans counts predicate-footprint registrations (one scan
	// per distinct predicate per cache lifetime).
	FootprintScans atomic.Int64
}

// CacheSnapshot is a plain-value copy of the counters, for JSON records and
// assertions.
type CacheSnapshot struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	PlanHits       int64 `json:"plan_hits"`
	Evaluations    int64 `json:"evaluations"`
	SharedWaits    int64 `json:"shared_waits"`
	Evictions      int64 `json:"evictions"`
	Invalidated    int64 `json:"invalidated"`
	PlanRepairs    int64 `json:"plan_repairs"`
	StaleBypasses  int64 `json:"stale_bypasses"`
	FootprintScans int64 `json:"footprint_scans"`
}

// Snapshot reads every counter once. Individual loads are atomic; the
// snapshot as a whole is approximate under concurrent traffic, which is all
// a metrics export needs.
func (c *CacheCounters) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:           c.Hits.Load(),
		Misses:         c.Misses.Load(),
		PlanHits:       c.PlanHits.Load(),
		Evaluations:    c.Evaluations.Load(),
		SharedWaits:    c.SharedWaits.Load(),
		Evictions:      c.Evictions.Load(),
		Invalidated:    c.Invalidated.Load(),
		PlanRepairs:    c.PlanRepairs.Load(),
		StaleBypasses:  c.StaleBypasses.Load(),
		FootprintScans: c.FootprintScans.Load(),
	}
}

// HitRate is result-cache hits over served lookups (hits + misses + shared
// waits); 0 when nothing has been served. Plan hits count as misses here —
// they re-rank cached lists but did not find a ready answer.
func (s CacheSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses + s.SharedWaits
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// ServedRate is the share of served lookups the cache answered without a
// store evaluation: result hits, plan hits, and shared waits all avoid the
// scan; only Evaluations (the leaders that actually ran) pay it. This is
// the cache-effectiveness figure HitRate understates when plan hits are
// common.
func (s CacheSnapshot) ServedRate() float64 {
	total := s.Hits + s.Misses + s.SharedWaits
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.PlanHits+s.SharedWaits) / float64(total)
}
