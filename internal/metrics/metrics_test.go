package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestSelectivity(t *testing.T) {
	if got := Selectivity(10, 2); got != 5 {
		t.Errorf("Selectivity = %v", got)
	}
	if got := Selectivity(10, 0); got != 0 {
		t.Errorf("zero preds = %v", got)
	}
}

func TestUtility(t *testing.T) {
	if got := Utility(5, 0.4); !almostEq(got, 2.0) {
		t.Errorf("Utility = %v", got)
	}
}

func TestRecordUtilityCap(t *testing.T) {
	r := combine.Record{NumPreds: 2, NumTuples: 100, Intensity: 0.5}
	// Uncapped: (100/2)*0.5 = 25. Capped at 25 tuples: (25/2)*0.5 = 6.25.
	if got := RecordUtility(r, 0); !almostEq(got, 25) {
		t.Errorf("uncapped = %v", got)
	}
	if got := RecordUtility(r, 25); !almostEq(got, 6.25) {
		t.Errorf("capped = %v", got)
	}
	small := combine.Record{NumPreds: 2, NumTuples: 10, Intensity: 0.5}
	if RecordUtility(small, 25) != RecordUtility(small, 0) {
		t.Error("cap must not affect small results")
	}
}

func TestSimilarity(t *testing.T) {
	cases := []struct {
		a, b []int64
		want float64
	}{
		{[]int64{1, 2, 3}, []int64{1, 2, 3}, 1},
		{[]int64{1, 2, 3}, []int64{4, 5, 6}, 0},
		{[]int64{1, 2, 3, 4}, []int64{3, 4}, 0.5},
		{nil, nil, 1},
		{[]int64{1}, nil, 0},
	}
	for _, c := range cases {
		if got := Similarity(c.a, c.b); !almostEq(got, c.want) {
			t.Errorf("Similarity(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilaritySymmetricProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := make([]int64, len(xs))
		b := make([]int64, len(ys))
		for i, x := range xs {
			a[i] = int64(x)
		}
		for i, y := range ys {
			b[i] = int64(y)
		}
		s1, s2 := Similarity(a, b), Similarity(b, a)
		return almostEq(s1, s2) && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlap(t *testing.T) {
	// Same order on the common subset -> 1 (the paper's 100% overlap).
	a := []int64{1, 2, 3, 4, 5}
	b := []int64{9, 1, 3, 5, 8}
	if got := Overlap(a, b); !almostEq(got, 1) {
		t.Errorf("Overlap = %v, want 1", got)
	}
	// Fully reversed order -> no concordant pairs.
	c := []int64{3, 2, 1}
	d := []int64{1, 2, 3}
	if got := Overlap(c, d); got != 0 {
		t.Errorf("reversed Overlap = %v", got)
	}
	// One swap among three: pairs (1,2) discordant, (1,3) and (2,3)... for
	// a=[2,1,3], b=[1,2,3]: concordant pairs are (2,3) and (1,3) -> 2/3.
	if got := Overlap([]int64{2, 1, 3}, []int64{1, 2, 3}); !almostEq(got, 2.0/3) {
		t.Errorf("one-swap Overlap = %v", got)
	}
	// An insertion shift must not zero the metric: a=[9,1,2,3] vs
	// b=[1,2,3] share [1,2,3] in identical order -> 1.
	if got := Overlap([]int64{9, 1, 2, 3}, []int64{1, 2, 3}); !almostEq(got, 1) {
		t.Errorf("shifted Overlap = %v", got)
	}
	// Single shared tuple is trivially ordered.
	if got := Overlap([]int64{5, 7}, []int64{7, 9}); !almostEq(got, 1) {
		t.Errorf("single common Overlap = %v", got)
	}
	if got := Overlap([]int64{1}, []int64{2}); got != 0 {
		t.Errorf("disjoint Overlap = %v", got)
	}
}

func TestPIDs(t *testing.T) {
	ts := []combine.ScoredTuple{{PID: 3, Intensity: 0.5}, {PID: 1, Intensity: 0.2}}
	got := PIDs(ts)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("PIDs = %v", got)
	}
}

func TestAndCombinationsBound(t *testing.T) {
	// Proposition 3: 2^N - 1.
	cases := map[int]float64{0: 0, 1: 1, 2: 3, 5: 31, 10: 1023}
	for n, want := range cases {
		if got := AndCombinations(n); got != want {
			t.Errorf("AndCombinations(%d) = %v, want %v", n, got, want)
		}
	}
	if !math.IsInf(AndCombinations(100), 1) {
		t.Error("overflow should return +Inf")
	}
	if AndCombinations(-1) != 0 {
		t.Error("negative n")
	}
}

func TestAndOrCombinationsBound(t *testing.T) {
	// Proposition 4: (3^N - 1) / 2.
	cases := map[int]float64{0: 0, 1: 1, 2: 4, 3: 13, 5: 121}
	for n, want := range cases {
		if got := AndOrCombinations(n); got != want {
			t.Errorf("AndOrCombinations(%d) = %v, want %v", n, got, want)
		}
	}
	if !math.IsInf(AndOrCombinations(100), 1) {
		t.Error("overflow should return +Inf")
	}
}

// Property: the AND_OR bound dominates the AND bound (Prop 4 >= Prop 3).
func TestBoundDominanceProperty(t *testing.T) {
	for n := 0; n <= 20; n++ {
		if AndOrCombinations(n) < AndCombinations(n) {
			t.Errorf("bound inversion at n=%d", n)
		}
	}
}

func coverageFixture(t *testing.T) (*combine.Evaluator, []hypre.ScoredPred) {
	t.Helper()
	db := relstore.NewDB()
	tbl, _ := db.CreateTable("dblp",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "venue", Kind: predicate.KindString},
	)
	venues := []string{"A", "A", "B", "B", "C"}
	for i, v := range venues {
		tbl.Insert(predicate.Int(int64(i+1)), predicate.String(v))
	}
	base := func(w predicate.Predicate) relstore.Query {
		return relstore.Query{From: "dblp", Where: w}
	}
	ev := combine.NewEvaluator(db, base, "dblp.pid")
	mk := func(p string, in float64) hypre.ScoredPred {
		sp, err := hypre.NewScoredPred(p, in)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	prefs := []hypre.ScoredPred{
		mk(`dblp.venue="A"`, 0.5),
		mk(`dblp.venue="B"`, 0.3),
	}
	return ev, prefs
}

func TestCoverage(t *testing.T) {
	ev, prefs := coverageFixture(t)
	n, err := Coverage(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Coverage = %d, want 4 (A∪B)", n)
	}
	set, err := CoverageSet(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 4 || set.Contains(5) {
		t.Errorf("CoverageSet = %v", set)
	}
	// More preferences can only grow coverage (monotonicity).
	sp, _ := hypre.NewScoredPred(`dblp.venue="C"`, 0.1)
	n2, _ := Coverage(ev, append(prefs, sp))
	if n2 != 5 {
		t.Errorf("extended coverage = %d", n2)
	}
}
