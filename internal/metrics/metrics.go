// Package metrics implements the evaluation metrics of §5.1 and §7.6.2 —
// preference selectivity, utility, coverage, similarity and overlap — plus
// the theoretical combination-count bounds of Propositions 3 and 4.
package metrics

import (
	"math"

	"hypre/internal/combine"
	"hypre/internal/hypre"
)

// Selectivity is Equation (5.1): the ratio between the number of tuples
// returned and the number of predicates used to enhance the base query.
func Selectivity(numTuples, numPreferences int) float64 {
	if numPreferences == 0 {
		return 0
	}
	return float64(numTuples) / float64(numPreferences)
}

// Utility is Equation (5.2): preference selectivity × combined intensity.
func Utility(selectivity, intensity float64) float64 {
	return selectivity * intensity
}

// RecordUtility computes the utility of one combination record. Per §7.1.1,
// tupleCap (the paper uses 25, "the first page") truncates the tuple count
// so that outlier combinations returning thousands of weak tuples do not
// dominate; pass 0 to disable the cap.
func RecordUtility(r combine.Record, tupleCap int) float64 {
	n := r.NumTuples
	if tupleCap > 0 && n > tupleCap {
		n = tupleCap
	}
	return Utility(Selectivity(n, r.NumPreds), r.Intensity)
}

// Coverage is Definition 18: the total number of distinct tuples "touched"
// when every preference in the list is used independently (union of the
// per-preference result sets).
func Coverage(ev *combine.Evaluator, prefs []hypre.ScoredPred) (int, error) {
	var acc combine.IntSet
	for _, p := range prefs {
		s, err := ev.PredSet(p)
		if err != nil {
			return 0, err
		}
		acc = acc.Union(s)
	}
	return acc.Len(), nil
}

// CoverageSet is Coverage returning the tuple set itself.
func CoverageSet(ev *combine.Evaluator, prefs []hypre.ScoredPred) (combine.IntSet, error) {
	var acc combine.IntSet
	for _, p := range prefs {
		s, err := ev.PredSet(p)
		if err != nil {
			return nil, err
		}
		acc = acc.Union(s)
	}
	return acc, nil
}

// Similarity is Definition 21: the percentage (0..1) of tuples common to
// the two result lists. It is normalized by the larger list, so identical
// lists score 1 and disjoint lists score 0 regardless of length skew.
func Similarity(a, b []int64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := combine.NewIntSet(a)
	sb := combine.NewIntSet(b)
	common := sa.Intersect(sb).Len()
	den := sa.Len()
	if sb.Len() > den {
		den = sb.Len()
	}
	return float64(common) / float64(den)
}

// Overlap is Definition 22: restricted to the tuples common to both lists,
// the fraction that appear in the same relative order. It is computed as
// pairwise order concordance over the common subset: for every pair of
// shared tuples, do the two lists rank them the same way? 1 means the
// shared tuples are ranked identically; 0 means the order is fully
// reversed. (Pairwise concordance, unlike positional equality, does not
// collapse to 0 when a single insertion shifts every later position.)
func Overlap(a, b []int64) float64 {
	sa := combine.NewIntSet(a)
	sb := combine.NewIntSet(b)
	common := sa.Intersect(sb)
	if common.Len() == 0 {
		return 0
	}
	fa := project(a, common)
	fb := project(b, common)
	if len(fa) == 1 {
		return 1
	}
	posB := make(map[int64]int, len(fb))
	for i, v := range fb {
		posB[v] = i
	}
	agree, pairs := 0, 0
	for i := 0; i < len(fa); i++ {
		for j := i + 1; j < len(fa); j++ {
			pairs++
			if posB[fa[i]] < posB[fa[j]] {
				agree++
			}
		}
	}
	return float64(agree) / float64(pairs)
}

// project filters list to members of keep, preserving order and dropping
// duplicates after the first occurrence.
func project(list []int64, keep combine.IntSet) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, v := range list {
		if keep.Contains(v) && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// PIDs extracts the pid column from a ranked tuple list.
func PIDs(ts []combine.ScoredTuple) []int64 {
	out := make([]int64, len(ts))
	for i, t := range ts {
		out[i] = t.PID
	}
	return out
}

// AndCombinations is Proposition 3: the number of distinct preference
// combinations of N preferences under AND-only composition, 2^N − 1.
// Returns +Inf for N > 62 (beyond uint64 range; the point of the
// proposition is exactly that this explodes).
func AndCombinations(n int) float64 {
	if n < 0 {
		return 0
	}
	if n > 62 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(n)) - 1
}

// AndOrCombinations is Proposition 4: the number of combinations under AND
// and OR composition, (3^N − 1) / 2. Returns +Inf for N > 39.
func AndOrCombinations(n int) float64 {
	if n < 0 {
		return 0
	}
	if n > 39 {
		return math.Inf(1)
	}
	p := 1.0
	for i := 0; i < n; i++ {
		p *= 3
	}
	return (p - 1) / 2
}
