package metrics

import "sync/atomic"

// AdmitCounters is one admission-control route class's traffic ledger. The
// gate increments these lock-free on every arrival; the serving tier exposes
// them per class through the obs registry and the serve experiment snapshots
// them into the BENCH record.
type AdmitCounters struct {
	// Admitted counts arrivals that found a token and entered immediately.
	Admitted atomic.Int64
	// Queued counts arrivals admitted after waiting in the bounded queue.
	Queued atomic.Int64
	// Shed counts arrivals rejected because their projected queue delay
	// exceeded the SLO or the queue was full (HTTP 429 + Retry-After).
	Shed atomic.Int64
	// Canceled counts queued arrivals whose context ended before their
	// turn (client disconnects); their reservation is returned.
	Canceled atomic.Int64
}

// AdmitSnapshot is a plain-value copy of the counters.
type AdmitSnapshot struct {
	Admitted int64 `json:"admitted"`
	Queued   int64 `json:"queued"`
	Shed     int64 `json:"shed"`
	Canceled int64 `json:"canceled"`
}

// Snapshot reads every counter once; approximate under concurrent traffic,
// which is all a metrics export needs.
func (c *AdmitCounters) Snapshot() AdmitSnapshot {
	return AdmitSnapshot{
		Admitted: c.Admitted.Load(),
		Queued:   c.Queued.Load(),
		Shed:     c.Shed.Load(),
		Canceled: c.Canceled.Load(),
	}
}

// Offered is every arrival the gate decided on (canceled waiters included —
// they were offered and queued before giving up).
func (s AdmitSnapshot) Offered() int64 {
	return s.Admitted + s.Queued + s.Shed + s.Canceled
}

// ShedRate is the fraction of offered arrivals that were shed; 0 when
// nothing was offered.
func (s AdmitSnapshot) ShedRate() float64 {
	total := s.Offered()
	if total == 0 {
		return 0
	}
	return float64(s.Shed) / float64(total)
}
