package metrics

import "testing"

// Pins the counter semantics the serving tier maintains: Misses splits into
// PlanHits (evaluation avoided via a cached plan) + Evaluations (store work
// actually run), HitRate counts only result-cache hits, and ServedRate
// credits every served-without-evaluation outcome.
func TestCacheCounterSemantics(t *testing.T) {
	var c CacheCounters
	// 6 result hits, 4 misses (3 answered by plan, 1 evaluated), 2 shared
	// waits, 1 stale bypass (an evaluation, but not a miss evaluation).
	c.Hits.Add(6)
	c.Misses.Add(4)
	c.PlanHits.Add(3)
	c.Evaluations.Add(1)
	c.SharedWaits.Add(2)
	c.StaleBypasses.Add(1)

	s := c.Snapshot()
	if s.Misses != s.PlanHits+s.Evaluations {
		t.Fatalf("miss split broken: misses=%d, plan=%d + eval=%d",
			s.Misses, s.PlanHits, s.Evaluations)
	}
	// HitRate: 6 / (6+4+2).
	if got, want := s.HitRate(), 6.0/12.0; got != want {
		t.Fatalf("HitRate = %v, want %v", got, want)
	}
	// ServedRate: (6 hits + 3 plan hits + 2 shared) / 12 — the plan hits
	// HitRate undercounts.
	if got, want := s.ServedRate(), 11.0/12.0; got != want {
		t.Fatalf("ServedRate = %v, want %v", got, want)
	}
	if s.ServedRate() <= s.HitRate() {
		t.Fatal("ServedRate must exceed HitRate when plan hits exist")
	}

	var empty CacheSnapshot
	if empty.HitRate() != 0 || empty.ServedRate() != 0 {
		t.Fatal("empty snapshot rates must be 0")
	}
}
