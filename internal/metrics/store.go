package metrics

import "hypre/internal/relstore"

// StoreCounters aliases the relstore write-path counters (group-commit
// batching, change-log overflows, compactions, join repair vs rebuild) into
// the metrics package, next to the serving tier's CacheCounters — the
// implementation lives in relstore to keep the store free of upward
// imports. Attach with relstore.WithStoreCounters.
type StoreCounters = relstore.StoreCounters

// StoreSnapshot is the plain-value copy StoreCounters.Snapshot returns.
type StoreSnapshot = relstore.StoreSnapshot
