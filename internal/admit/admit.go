// Package admit is the serving tier's admission-control layer: one
// token-bucket + bounded-queue gate per route class. A burst beyond the
// configured rate queues arrivals (degrading latency, never correctness) up
// to the point where the projected queue delay would blow the latency SLO;
// past that point arrivals are shed immediately with a Retry-After hint, so
// the queue's delay stays bounded by construction and admitted requests keep
// their latency budget no matter how hard the offered load overshoots.
//
// The gate is reservation-based: the token count may go negative, encoding
// the backlog of queued admissions, and a new arrival's projected delay is
// exactly the time the bucket needs to refill back to one token. Shedding is
// therefore a pure arithmetic decision under one short lock — no shed
// request ever occupies a queue slot or a goroutine.
package admit

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hypre/internal/metrics"
	"hypre/internal/obs"
)

// Config shapes one route class's gate. The zero value (Rate <= 0) is an
// unlimited gate that admits everything immediately — route classes opt in
// to throttling, they are never throttled by default.
type Config struct {
	// Rate is the sustained admission rate in arrivals per second.
	Rate float64
	// Burst is the token bucket depth: how many arrivals are admitted
	// instantly after an idle period (minimum 1).
	Burst int
	// MaxQueue bounds how many arrivals may wait concurrently (default 256).
	MaxQueue int
	// SLO is the queue-delay objective: an arrival whose projected wait
	// exceeds it is shed instead of queued (default 50ms).
	SLO time.Duration
}

// Decision reports how one arrival was admitted.
type Decision struct {
	// Queued is true when the arrival waited for a token.
	Queued bool
	// QueueDelay is the wait the reservation imposed (0 when not queued).
	QueueDelay time.Duration
}

// ShedError is the load-shedding rejection: the caller should answer 429
// and relay RetryAfter, after which the backlog will have drained enough
// that a retry projects within the SLO again.
type ShedError struct {
	Class      string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admit: %s overloaded, retry after %v", e.Class, e.RetryAfter)
}

// RetryAfterSeconds renders the hint for an HTTP Retry-After header
// (whole seconds, minimum 1).
func (e *ShedError) RetryAfterSeconds() int {
	s := int((e.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Gate is one route class's admission gate. A nil *Gate admits everything —
// callers hold gates for their classes and need no nil checks.
type Gate struct {
	class    string
	cfg      Config
	counters *metrics.AdmitCounters

	// queueHist observes the queue delay of every admission (0 for
	// immediate ones); shedCtr counts rejections. Both are nil-safe.
	queueHist *obs.Histogram
	shedCtr   *obs.Counter

	now func() time.Time // injectable clock for tests

	mu     sync.Mutex
	tokens float64 // may go negative: queued reservations
	last   time.Time
	queued int
}

// New builds a gate for one class. reg may be nil (no observability); the
// gate then still keeps its counters.
func New(class string, cfg Config, reg *obs.Registry) *Gate {
	if cfg.Rate > 0 {
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
		if cfg.MaxQueue <= 0 {
			cfg.MaxQueue = 256
		}
		if cfg.SLO <= 0 {
			cfg.SLO = 50 * time.Millisecond
		}
	}
	g := &Gate{
		class:    class,
		cfg:      cfg,
		counters: &metrics.AdmitCounters{},
		now:      time.Now,
	}
	if reg != nil {
		g.queueHist = reg.Histogram("admit_queue_" + class)
		g.shedCtr = reg.Counter("serve_shed_" + class)
		counters := g.counters
		reg.RegisterGroup("admit_"+class, func() map[string]int64 {
			snap := counters.Snapshot()
			return map[string]int64{
				"admitted": snap.Admitted,
				"queued":   snap.Queued,
				"shed":     snap.Shed,
				"canceled": snap.Canceled,
			}
		})
	}
	return g
}

// Counters exposes the class's traffic ledger.
func (g *Gate) Counters() *metrics.AdmitCounters {
	if g == nil {
		return nil
	}
	return g.counters
}

// Config returns the gate's effective (defaulted) configuration.
func (g *Gate) Config() Config {
	if g == nil {
		return Config{}
	}
	return g.cfg
}

// Admit decides one arrival: immediate admission when a token is free, a
// bounded wait when the backlog still projects within the SLO, and a
// *ShedError when it does not (or the queue is full). A ctx that ends while
// queued returns ctx.Err() and hands the reservation back. Admit never
// blocks shed traffic — rejection is decided and returned immediately.
func (g *Gate) Admit(ctx context.Context) (Decision, error) {
	if g == nil || g.cfg.Rate <= 0 {
		if g != nil {
			g.counters.Admitted.Add(1)
		}
		return Decision{}, nil
	}

	g.mu.Lock()
	now := g.now()
	if g.last.IsZero() {
		g.last = now
		g.tokens = float64(g.cfg.Burst)
	}
	g.tokens += now.Sub(g.last).Seconds() * g.cfg.Rate
	if g.tokens > float64(g.cfg.Burst) {
		g.tokens = float64(g.cfg.Burst)
	}
	g.last = now

	if g.tokens >= 1 {
		g.tokens--
		g.mu.Unlock()
		g.counters.Admitted.Add(1)
		g.queueHist.Record(0)
		return Decision{}, nil
	}

	// No token: the projected wait is the refill time back to one token,
	// which already accounts for every queued reservation ahead of us
	// (each drove tokens one further below zero).
	delay := time.Duration((1 - g.tokens) / g.cfg.Rate * float64(time.Second))
	if delay > g.cfg.SLO || g.queued >= g.cfg.MaxQueue {
		g.mu.Unlock()
		g.counters.Shed.Add(1)
		g.shedCtr.Add(1)
		retry := delay - g.cfg.SLO
		if retry <= 0 {
			retry = delay
		}
		return Decision{}, &ShedError{Class: g.class, RetryAfter: retry}
	}
	g.tokens-- // reserve (tokens go negative)
	g.queued++
	g.mu.Unlock()

	t := time.NewTimer(delay)
	select {
	case <-t.C:
		g.mu.Lock()
		g.queued--
		g.mu.Unlock()
		g.counters.Queued.Add(1)
		g.queueHist.RecordDuration(delay)
		return Decision{Queued: true, QueueDelay: delay}, nil
	case <-ctx.Done():
		t.Stop()
		g.mu.Lock()
		g.queued--
		g.tokens++ // hand the reservation back
		if g.tokens > float64(g.cfg.Burst) {
			g.tokens = float64(g.cfg.Burst)
		}
		g.mu.Unlock()
		g.counters.Canceled.Add(1)
		return Decision{}, ctx.Err()
	}
}

// Controller is the per-route-class gate set of one server.
type Controller struct {
	mu    sync.RWMutex
	reg   *obs.Registry
	gates map[string]*Gate
}

// NewController builds an empty controller wired to reg (nil disables
// observability for every class).
func NewController(reg *obs.Registry) *Controller {
	return &Controller{reg: reg, gates: make(map[string]*Gate)}
}

// AddClass registers a class's gate, replacing any previous one.
func (c *Controller) AddClass(class string, cfg Config) *Gate {
	g := New(class, cfg, c.reg)
	c.mu.Lock()
	c.gates[class] = g
	c.mu.Unlock()
	return g
}

// Gate returns the class's gate; unknown classes get a nil gate, which
// admits everything.
func (c *Controller) Gate(class string) *Gate {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gates[class]
}
