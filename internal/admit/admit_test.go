package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypre/internal/obs"
)

// fixedClock drives a gate deterministically: tests advance it by hand, so
// refill arithmetic is exact and no assertion races the wall clock.
type fixedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fixedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fixedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestGate(t *testing.T, cfg Config) (*Gate, *fixedClock) {
	t.Helper()
	g := New("test", cfg, obs.NewRegistry())
	clk := &fixedClock{t: time.Unix(1000, 0)}
	g.now = clk.now
	return g, clk
}

func TestUnlimitedGateAdmitsImmediately(t *testing.T) {
	g := New("open", Config{}, nil)
	for i := 0; i < 100; i++ {
		d, err := g.Admit(context.Background())
		if err != nil || d.Queued {
			t.Fatalf("unlimited gate: admit %d: decision %+v err %v", i, d, err)
		}
	}
	if got := g.Counters().Snapshot().Admitted; got != 100 {
		t.Fatalf("admitted = %d, want 100", got)
	}
	var nilGate *Gate
	if _, err := nilGate.Admit(context.Background()); err != nil {
		t.Fatalf("nil gate must admit: %v", err)
	}
}

func TestBurstThenQueueThenShed(t *testing.T) {
	// 10/s, burst 3, SLO 250ms: 3 instant admissions, then queued waits of
	// 100ms/200ms (within SLO), then the next projection (300ms) sheds.
	g, _ := newTestGate(t, Config{Rate: 10, Burst: 3, MaxQueue: 64, SLO: 250 * time.Millisecond})
	for i := 0; i < 3; i++ {
		d, err := g.Admit(context.Background())
		if err != nil || d.Queued {
			t.Fatalf("burst admit %d: decision %+v err %v", i, d, err)
		}
	}
	for i, want := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond} {
		d, err := g.Admit(context.Background())
		if err != nil {
			t.Fatalf("queued admit %d: %v", i, err)
		}
		if !d.Queued || d.QueueDelay != want {
			t.Fatalf("queued admit %d: got %+v, want delay %v", i, d, want)
		}
	}
	_, err := g.Admit(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("expected shed, got %v", err)
	}
	// Projected delay 300ms, SLO 250ms: retry after the 50ms overhang.
	if shed.RetryAfter != 50*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 50ms", shed.RetryAfter)
	}
	if shed.RetryAfterSeconds() != 1 {
		t.Fatalf("RetryAfterSeconds = %d, want floor of 1", shed.RetryAfterSeconds())
	}
	snap := g.Counters().Snapshot()
	if snap.Admitted != 3 || snap.Queued != 2 || snap.Shed != 1 {
		t.Fatalf("counters = %+v", snap)
	}
}

func TestRefillRestoresBurst(t *testing.T) {
	g, clk := newTestGate(t, Config{Rate: 100, Burst: 4, SLO: time.Millisecond})
	for i := 0; i < 4; i++ {
		if _, err := g.Admit(context.Background()); err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
	}
	if _, err := g.Admit(context.Background()); err == nil {
		t.Fatal("empty bucket with 1ms SLO must shed")
	}
	clk.advance(time.Second) // refills far past Burst; must cap at 4
	for i := 0; i < 4; i++ {
		d, err := g.Admit(context.Background())
		if err != nil || d.Queued {
			t.Fatalf("post-refill admit %d: %+v %v", i, d, err)
		}
	}
	if _, err := g.Admit(context.Background()); err == nil {
		t.Fatal("bucket must have capped at Burst")
	}
}

func TestMaxQueueSheds(t *testing.T) {
	// SLO generous, MaxQueue 1: the second queued arrival sheds on the
	// queue bound, not the SLO. Rate 4 keeps the queued waiter's real
	// timer at 250ms so the slot is reliably observable while held.
	g, _ := newTestGate(t, Config{Rate: 4, Burst: 1, MaxQueue: 1, SLO: time.Hour})
	if _, err := g.Admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(context.Background())
		done <- err
	}()
	// Wait for the first waiter to hold the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		q := g.queued
		g.mu.Unlock()
		if q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued waiter never appeared in the queue")
		}
		time.Sleep(100 * time.Microsecond)
	}
	_, err := g.Admit(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("queue-full arrival: want shed, got %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestCancelReturnsReservation(t *testing.T) {
	g, _ := newTestGate(t, Config{Rate: 2, Burst: 1, MaxQueue: 8, SLO: 10 * time.Second})
	if _, err := g.Admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx) // would wait 500ms
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		q := g.queued
		g.mu.Unlock()
		if q == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued waiter never appeared in the queue")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: %v", err)
	}
	// The reservation came back: the next arrival projects the same 500ms
	// wait the canceled one had, not 1s.
	g.mu.Lock()
	tokens, queued := g.tokens, g.queued
	g.mu.Unlock()
	if queued != 0 || tokens < -0.001 || tokens > 0.001 {
		t.Fatalf("after cancel: tokens %.3f queued %d, want ~0 tokens and empty queue", tokens, queued)
	}
	if got := g.Counters().Snapshot().Canceled; got != 1 {
		t.Fatalf("canceled counter = %d", got)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	// Hammer a small gate from many goroutines (real clock): whatever the
	// interleaving, every arrival lands in exactly one counter bucket.
	g := New("hammer", Config{Rate: 500, Burst: 8, MaxQueue: 16, SLO: 20 * time.Millisecond}, obs.NewRegistry())
	const n = 400
	var wg sync.WaitGroup
	var admitted, shed, canceled atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%7 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5)*time.Millisecond)
				defer cancel()
			}
			_, err := g.Admit(ctx)
			var sh *ShedError
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.As(err, &sh):
				shed.Add(1)
			case errors.Is(err, context.DeadlineExceeded):
				canceled.Add(1)
			default:
				t.Errorf("unexpected admit error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	snap := g.Counters().Snapshot()
	if snap.Offered() != n {
		t.Fatalf("offered = %d, want %d (%+v)", snap.Offered(), n, snap)
	}
	if snap.Admitted+snap.Queued != admitted.Load() || snap.Shed != shed.Load() || snap.Canceled != canceled.Load() {
		t.Fatalf("counter mismatch: snap %+v vs observed admit %d shed %d cancel %d",
			snap, admitted.Load(), shed.Load(), canceled.Load())
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.queued != 0 {
		t.Fatalf("queue not drained: %d", g.queued)
	}
}
