// Package ctxpref implements contextual preferences — the preference-graph
// flavour of Definition 11 / Fig. 2 (Stefanidis & Pitoura) that Chapter 2
// surveys and §8.2 names as HYPRE's natural extension: preferences
// annotated with a context state over hierarchical dimensions (e.g.
// (company=friends, weather=good, occasion=holidays)), organized in a DAG
// whose edges connect each state to the states it tightly covers, and
// resolved at query time to the most specific preferences matching the
// current context.
package ctxpref

import (
	"fmt"
	"sort"
	"strings"

	"hypre/internal/hypre"
)

// All is the root value of every dimension hierarchy.
const All = "ALL"

// Hierarchy is one context dimension: a tree of values rooted at ALL.
type Hierarchy struct {
	Name   string
	parent map[string]string
}

// NewHierarchy creates a dimension containing only ALL.
func NewHierarchy(name string) *Hierarchy {
	return &Hierarchy{Name: name, parent: map[string]string{All: ""}}
}

// Add inserts value under parent. The parent must already exist.
func (h *Hierarchy) Add(value, parent string) error {
	if value == All {
		return fmt.Errorf("ctxpref: cannot redefine ALL")
	}
	if _, ok := h.parent[parent]; !ok {
		return fmt.Errorf("ctxpref: unknown parent %q in dimension %s", parent, h.Name)
	}
	if _, dup := h.parent[value]; dup {
		return fmt.Errorf("ctxpref: duplicate value %q in dimension %s", value, h.Name)
	}
	h.parent[value] = parent
	return nil
}

// Has reports whether the value exists in the dimension.
func (h *Hierarchy) Has(value string) bool {
	_, ok := h.parent[value]
	return ok
}

// Covers reports whether general is an ancestor-or-self of specific
// (ALL covers everything).
func (h *Hierarchy) Covers(general, specific string) bool {
	for v := specific; v != ""; v = h.parent[v] {
		if v == general {
			return true
		}
		if v == All {
			break
		}
	}
	return general == All
}

// Depth returns the distance from ALL (ALL = 0).
func (h *Hierarchy) Depth(value string) int {
	d := 0
	for v := value; v != All && v != ""; v = h.parent[v] {
		d++
	}
	return d
}

// Parent returns the value's parent ("" for ALL).
func (h *Hierarchy) Parent(value string) string { return h.parent[value] }

// Model is an ordered set of dimensions.
type Model struct {
	Dims []*Hierarchy
}

// NewModel bundles dimensions.
func NewModel(dims ...*Hierarchy) *Model { return &Model{Dims: dims} }

// State is one context state: a value per dimension, in model order.
type State []string

// Validate checks that the state matches the model.
func (m *Model) Validate(s State) error {
	if len(s) != len(m.Dims) {
		return fmt.Errorf("ctxpref: state has %d values, model has %d dimensions", len(s), len(m.Dims))
	}
	for i, v := range s {
		if !m.Dims[i].Has(v) {
			return fmt.Errorf("ctxpref: unknown value %q for dimension %s", v, m.Dims[i].Name)
		}
	}
	return nil
}

// Covers reports whether general covers specific in every dimension
// (the partial order of context states).
func (m *Model) Covers(general, specific State) bool {
	for i := range m.Dims {
		if !m.Dims[i].Covers(general[i], specific[i]) {
			return false
		}
	}
	return true
}

// TightCover reports whether a covers b and differs by exactly one
// hierarchy step in exactly one dimension — the edge condition of
// Definition 11.
func (m *Model) TightCover(a, b State) bool {
	if !m.Covers(a, b) {
		return false
	}
	steps := 0
	for i := range m.Dims {
		steps += m.Dims[i].Depth(b[i]) - m.Dims[i].Depth(a[i])
	}
	return steps == 1
}

// Specificity is the total depth of the state (more = more specific).
func (m *Model) Specificity(s State) int {
	total := 0
	for i := range m.Dims {
		total += m.Dims[i].Depth(s[i])
	}
	return total
}

// Key renders the state canonically.
func (s State) Key() string { return strings.Join(s, "|") }

// Entry is one profile row: a context state plus the preference holding in
// it.
type Entry struct {
	State State
	Pref  hypre.ScoredPred
}

// Graph is the contextual preference graph PG_Pr = (V_Pr, E_Pr): one node
// per distinct context state in the profile, an edge (vi, vj) when state(vi)
// tightly covers state(vj).
type Graph struct {
	model   *Model
	states  []State
	prefs   map[string][]hypre.ScoredPred
	edges   map[string][]string // tight-cover adjacency, general -> specific
	indexOf map[string]int
}

// Build validates the entries and constructs the graph.
func Build(m *Model, entries []Entry) (*Graph, error) {
	g := &Graph{
		model:   m,
		prefs:   map[string][]hypre.ScoredPred{},
		edges:   map[string][]string{},
		indexOf: map[string]int{},
	}
	for _, e := range entries {
		if err := m.Validate(e.State); err != nil {
			return nil, err
		}
		k := e.State.Key()
		if _, seen := g.indexOf[k]; !seen {
			g.indexOf[k] = len(g.states)
			g.states = append(g.states, append(State(nil), e.State...))
		}
		g.prefs[k] = append(g.prefs[k], e.Pref)
	}
	for _, a := range g.states {
		for _, b := range g.states {
			if a.Key() != b.Key() && m.TightCover(a, b) {
				g.edges[a.Key()] = append(g.edges[a.Key()], b.Key())
			}
		}
	}
	for k := range g.edges {
		sort.Strings(g.edges[k])
	}
	return g, nil
}

// States returns the distinct profile states, in first-seen order.
func (g *Graph) States() []State { return g.states }

// TightlyCovered returns the state keys the given state tightly covers.
func (g *Graph) TightlyCovered(s State) []string { return g.edges[s.Key()] }

// Resolve returns the preferences applicable to the query context: every
// profile state that covers the query qualifies, ordered most-specific
// first (ties by state key), with preferences inside a state ordered by
// descending intensity. This is the "most specific context wins" resolution
// rule of the contextual-preference literature.
func (g *Graph) Resolve(query State) ([]hypre.ScoredPred, error) {
	if err := g.model.Validate(query); err != nil {
		return nil, err
	}
	type cand struct {
		key  string
		spec int
	}
	var cands []cand
	for _, s := range g.states {
		if g.model.Covers(s, query) {
			cands = append(cands, cand{key: s.Key(), spec: g.model.Specificity(s)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].spec != cands[j].spec {
			return cands[i].spec > cands[j].spec
		}
		return cands[i].key < cands[j].key
	})
	var out []hypre.ScoredPred
	for _, c := range cands {
		ps := append([]hypre.ScoredPred(nil), g.prefs[c.key]...)
		sort.SliceStable(ps, func(i, j int) bool { return ps[i].Intensity > ps[j].Intensity })
		out = append(out, ps...)
	}
	return out, nil
}

// ResolveBest returns only the preferences of the single most specific
// covering state (the overriding attitude of §2.3).
func (g *Graph) ResolveBest(query State) ([]hypre.ScoredPred, error) {
	if err := g.model.Validate(query); err != nil {
		return nil, err
	}
	bestSpec := -1
	bestKey := ""
	for _, s := range g.states {
		if g.model.Covers(s, query) {
			spec := g.model.Specificity(s)
			if spec > bestSpec || (spec == bestSpec && s.Key() < bestKey) {
				bestSpec, bestKey = spec, s.Key()
			}
		}
	}
	if bestSpec < 0 {
		return nil, nil
	}
	ps := append([]hypre.ScoredPred(nil), g.prefs[bestKey]...)
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Intensity > ps[j].Intensity })
	return ps, nil
}
