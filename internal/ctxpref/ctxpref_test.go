package ctxpref

import (
	"testing"

	"hypre/internal/hypre"
)

// fig2Model builds the three-dimension model of Fig. 2: company, weather,
// occasion.
func fig2Model(t *testing.T) *Model {
	t.Helper()
	company := NewHierarchy("company")
	mustAdd(t, company, "friends", All)
	mustAdd(t, company, "family", All)
	weather := NewHierarchy("weather")
	mustAdd(t, weather, "good", All)
	mustAdd(t, weather, "bad", All)
	occasion := NewHierarchy("occasion")
	mustAdd(t, occasion, "holidays", All)
	mustAdd(t, occasion, "Easter", "holidays")
	mustAdd(t, occasion, "Christmas", "holidays")
	return NewModel(company, weather, occasion)
}

func mustAdd(t *testing.T, h *Hierarchy, v, p string) {
	t.Helper()
	if err := h.Add(v, p); err != nil {
		t.Fatal(err)
	}
}

func pref(t *testing.T, pred string, in float64) hypre.ScoredPred {
	t.Helper()
	p, err := hypre.NewScoredPred(pred, in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fig2Graph builds the profile of Fig. 2: p1..p7.
func fig2Graph(t *testing.T) (*Model, *Graph) {
	t.Helper()
	m := fig2Model(t)
	entries := []Entry{
		{State{"friends", "good", "holidays"}, pref(t, `genre="comedy"`, 0.9)}, // p1
		{State{"friends", "good", All}, pref(t, `genre="drama"`, 0.8)},         // p2
		{State{"friends", "good", "Easter"}, pref(t, `genre="family"`, 0.7)},   // p3
		{State{"friends", All, "Christmas"}, pref(t, `genre="classic"`, 0.6)},  // p4
		{State{All, All, "Easter"}, pref(t, `genre="spring"`, 0.5)},            // p5
		{State{"family", All, "Easter"}, pref(t, `genre="kids"`, 0.4)},         // p6
		{State{All, All, All}, pref(t, `genre="any"`, 0.3)},                    // p7
	}
	g, err := Build(m, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m, g
}

func TestHierarchyBasics(t *testing.T) {
	h := NewHierarchy("occasion")
	mustAdd(t, h, "holidays", All)
	mustAdd(t, h, "Easter", "holidays")
	if !h.Covers(All, "Easter") || !h.Covers("holidays", "Easter") || !h.Covers("Easter", "Easter") {
		t.Error("Covers chain broken")
	}
	if h.Covers("Easter", "holidays") {
		t.Error("reverse cover")
	}
	if h.Depth(All) != 0 || h.Depth("holidays") != 1 || h.Depth("Easter") != 2 {
		t.Error("depths wrong")
	}
	if h.Parent("Easter") != "holidays" {
		t.Error("parent wrong")
	}
}

func TestHierarchyValidation(t *testing.T) {
	h := NewHierarchy("x")
	if err := h.Add("v", "missing"); err == nil {
		t.Error("unknown parent accepted")
	}
	mustAdd(t, h, "v", All)
	if err := h.Add("v", All); err == nil {
		t.Error("duplicate accepted")
	}
	if err := h.Add(All, All); err == nil {
		t.Error("redefining ALL accepted")
	}
}

func TestModelValidateAndCovers(t *testing.T) {
	m := fig2Model(t)
	good := State{"friends", "good", "Easter"}
	if err := m.Validate(good); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(State{"friends", "good"}); err == nil {
		t.Error("short state accepted")
	}
	if err := m.Validate(State{"friends", "good", "nope"}); err == nil {
		t.Error("unknown value accepted")
	}
	if !m.Covers(State{All, All, "holidays"}, good) {
		t.Error("cover failed")
	}
	if m.Covers(good, State{All, All, "holidays"}) {
		t.Error("reverse cover")
	}
}

func TestTightCover(t *testing.T) {
	m := fig2Model(t)
	// One step in one dimension: tight.
	if !m.TightCover(State{"friends", "good", "holidays"}, State{"friends", "good", "Easter"}) {
		t.Error("expected tight cover")
	}
	// Two steps (ALL -> Easter): not tight.
	if m.TightCover(State{"friends", "good", All}, State{"friends", "good", "Easter"}) {
		t.Error("two-step cover must not be tight")
	}
	// One step in each of two dimensions: not tight.
	if m.TightCover(State{All, "good", All}, State{"friends", "good", "holidays"}) {
		t.Error("two-dimension step must not be tight")
	}
	// Equal states: not tight.
	s := State{"friends", "good", All}
	if m.TightCover(s, s) {
		t.Error("self cover must not be tight")
	}
}

func TestFig2GraphEdges(t *testing.T) {
	_, g := fig2Graph(t)
	if len(g.States()) != 7 {
		t.Fatalf("states = %d", len(g.States()))
	}
	// Fig. 2's arrows include (friends, good, holidays) -> (friends, good,
	// Easter) and (friends, good, ALL) -> (friends, good, holidays).
	covered := g.TightlyCovered(State{"friends", "good", "holidays"})
	if len(covered) != 1 || covered[0] != (State{"friends", "good", "Easter"}).Key() {
		t.Errorf("p1 covers %v", covered)
	}
	covered = g.TightlyCovered(State{"friends", "good", All})
	if len(covered) != 1 || covered[0] != (State{"friends", "good", "holidays"}).Key() {
		t.Errorf("p2 covers %v", covered)
	}
	// The root (ALL,ALL,ALL) tightly covers the one-step specializations
	// present: (ALL, ALL, holidays) is absent, so no tight edges from the
	// root to deeper states.
	if got := g.TightlyCovered(State{All, All, All}); len(got) != 0 {
		t.Errorf("root covers %v", got)
	}
}

func TestResolveMostSpecificFirst(t *testing.T) {
	_, g := fig2Graph(t)
	// Query context: friends, good weather, Easter.
	prefs, err := g.Resolve(State{"friends", "good", "Easter"})
	if err != nil {
		t.Fatal(err)
	}
	// Covering states: p3 (spec 4), p1 (spec 3), p2 (spec 2), p5 (spec 2),
	// p7 (spec 0). p4 (Christmas) and p6 (family) do not cover.
	if len(prefs) != 5 {
		t.Fatalf("prefs = %d: %v", len(prefs), prefs)
	}
	if prefs[0].Pred != `genre="family"` {
		t.Errorf("most specific = %s", prefs[0].Pred)
	}
	if prefs[len(prefs)-1].Pred != `genre="any"` {
		t.Errorf("least specific = %s", prefs[len(prefs)-1].Pred)
	}
}

func TestResolveBest(t *testing.T) {
	_, g := fig2Graph(t)
	best, err := g.ResolveBest(State{"friends", "good", "Easter"})
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 1 || best[0].Pred != `genre="family"` {
		t.Errorf("best = %v", best)
	}
	// A context nothing specific covers falls back to the root profile.
	best, err = g.ResolveBest(State{"family", "bad", "Christmas"})
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 1 || best[0].Pred != `genre="classic"` {
		// (friends, ALL, Christmas) does not cover family-company; the
		// most specific cover is p7 (ALL, ALL, ALL).
		if best[0].Pred != `genre="any"` {
			t.Errorf("fallback = %v", best)
		}
	}
}

func TestResolveValidatesQuery(t *testing.T) {
	_, g := fig2Graph(t)
	if _, err := g.Resolve(State{"bogus", "good", "Easter"}); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := g.ResolveBest(State{"friends"}); err == nil {
		t.Error("short query accepted")
	}
}

func TestBuildValidatesEntries(t *testing.T) {
	m := fig2Model(t)
	_, err := Build(m, []Entry{{State{"nope", "good", All}, pref(t, `a=1`, 0.5)}})
	if err == nil {
		t.Error("invalid entry accepted")
	}
}

func TestResolveIntensityOrderWithinState(t *testing.T) {
	m := fig2Model(t)
	st := State{"friends", "good", All}
	g, err := Build(m, []Entry{
		{st, pref(t, `a=1`, 0.2)},
		{st, pref(t, `b=2`, 0.9)},
		{st, pref(t, `c=3`, 0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	prefs, err := g.Resolve(State{"friends", "good", "Easter"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prefs) != 3 || prefs[0].Intensity != 0.9 || prefs[2].Intensity != 0.2 {
		t.Errorf("in-state order wrong: %v", prefs)
	}
}
