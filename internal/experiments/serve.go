package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"hypre/internal/admit"
	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/serve"
	"hypre/internal/workload"
)

// ServeConfig shapes the end-to-end HTTP serving benchmark: the real
// internal/serve App booted in-process (httptest), driven through actual
// HTTP requests in two phases — a closed-loop session-query drive with a
// concurrent mutation sidecar (sustained throughput and latency), then an
// open-loop burst against an admission-gated twin at an offered rate far
// past the gate (shed rate and goodput under overload).
type ServeConfig struct {
	// Queries is the closed-loop drive length; Workers its client count.
	Queries int
	Workers int
	K       int
	// Cap bounds each user's profile size (0 = full).
	Cap int
	// Sessions is how many user profiles are stored via PUT.
	Sessions int
	// Mix is the Zipf popularity draw over the stored sessions.
	Mix workload.ProfileMixConfig
	// MutateOps mutations ride along the closed-loop phase in batches of
	// MutateBatch ops per /v1/mutate call.
	MutateOps   int
	MutateBatch int

	// Burst phase: BurstQueries arrivals offered open-loop at
	// BurstOpsPerSec against a gate of AdmitRate/AdmitBurst/AdmitQueue/SLO.
	BurstQueries   int
	BurstOpsPerSec float64
	AdmitRate      float64
	AdmitBurst     int
	AdmitQueue     int
	SLO            time.Duration
	// P99Budget is the acceptance ceiling for the end-to-end p99 of
	// ADMITTED burst queries (queue wait included).
	P99Budget time.Duration

	// Reps repeats the measurement; the rep with the best closed-loop
	// throughput is reported, correctness flags AND across reps.
	Reps int
}

// DefaultServeConfig is the BENCH-record shape. The burst's shed rate is
// pinned by configuration, not hardware: offered 1500/s against an admitted
// 400/s leaves ~2/3 of the burst shed on any machine.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Queries:        600,
		Workers:        8,
		K:              10,
		Cap:            24,
		Sessions:       48,
		Mix:            workload.DefaultProfileMixConfig(),
		MutateOps:      160,
		MutateBatch:    8,
		BurstQueries:   1500,
		BurstOpsPerSec: 1500,
		AdmitRate:      400,
		AdmitBurst:     64,
		AdmitQueue:     2048,
		SLO:            30 * time.Millisecond,
		P99Budget:      250 * time.Millisecond,
		Reps:           3,
	}
}

// ServeResult is one measured serving run.
type ServeResult struct {
	Sessions int
	Queries  int
	Workers  int
	K        int

	// Closed-loop phase.
	OpsSec     float64
	P50, P99   time.Duration
	MutateOps  int
	MutateCals int
	HitRate    float64

	// Burst phase.
	BurstOffered   int
	BurstOfferedPS float64
	AdmitRate      float64
	BurstOK        int
	BurstShed      int
	ShedRate       float64
	GoodputPS      float64
	BurstP99       time.Duration // end-to-end p99 of admitted burst queries
	QueueP99       time.Duration // admission queue delay p99 (gate histogram)
	SLO            time.Duration
	P99Budget      time.Duration

	// Acceptance flags.
	Matched      bool // cached answers byte-identical to uncached evaluation
	SLOOK        bool // BurstP99 <= P99Budget
	RetryAfterOK bool // every 429 carried a positive Retry-After
	Reps         int
}

// RunServe boots the real server in-process and drives it over HTTP.
func RunServe(l *Lab, cfg ServeConfig) (*ServeResult, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	var best *ServeResult
	matched, sloOK, retryOK := true, true, true
	for rep := 0; rep < cfg.Reps; rep++ {
		r, err := runServeOnce(l, cfg, rep)
		if err != nil {
			return nil, err
		}
		matched = matched && r.Matched
		sloOK = sloOK && r.SLOOK
		retryOK = retryOK && r.RetryAfterOK
		if best == nil || r.OpsSec > best.OpsSec {
			best = r
		}
	}
	best.Matched, best.SLOOK, best.RetryAfterOK = matched, sloOK, retryOK
	best.Reps = cfg.Reps
	return best, nil
}

func runServeOnce(l *Lab, cfg ServeConfig, rep int) (*ServeResult, error) {
	net, err := workload.Generate(l.Cfg)
	if err != nil {
		return nil, err
	}

	// Eligible users and their profiles (canonicalized for the verify pass).
	users := make([]int64, 0, len(l.Prefs.Users))
	profiles := make(map[int64][]hypre.ScoredPred, cfg.Sessions)
	for _, uid := range l.Prefs.Users {
		if len(users) >= cfg.Sessions {
			break
		}
		canon, _ := combine.CanonicalProfile(l.ProfileFor(uid, cfg.Cap))
		if len(canon) == 0 {
			continue
		}
		users = append(users, uid)
		profiles[uid] = canon
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("serve: no users with positive profiles")
	}
	mix := workload.ZipfProfileSequence(users, cfg.Queries, cfg.Mix)

	res := &ServeResult{
		Sessions:  len(users),
		Queries:   len(mix.Seq),
		Workers:   cfg.Workers,
		K:         cfg.K,
		SLO:       cfg.SLO,
		P99Budget: cfg.P99Budget,
		Matched:   true,
		Reps:      1,
	}

	// --- Phase 1: closed loop against an ungated App ---
	app, err := serve.New(serve.Options{Net: net})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(app.Handler())
	defer ts.Close()
	client := ts.Client()

	// Store every session over the wire — the PUT path is part of what is
	// being measured for correctness (fingerprint canonicalization).
	for _, uid := range users {
		body, err := profileJSON(profiles[uid])
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequest("PUT", fmt.Sprintf("%s/v1/session/u%d/profile", ts.URL, uid), body)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("serve: PUT session u%d: status %d", uid, resp.StatusCode)
		}
	}

	reqs := make([]workload.HTTPRequest, len(mix.Seq))
	for i, uid := range mix.Seq {
		reqs[i] = workload.HTTPRequest{
			Method: "POST", Path: "/v1/query",
			Body: []byte(fmt.Sprintf(`{"session":"u%d","k":%d}`, uid, cfg.K)),
		}
	}

	// Mutation sidecar: pid-keyed op batches through /v1/mutate while the
	// query drive runs.
	stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
	if err != nil {
		return nil, err
	}
	plan := stream.PlanPartitions(1, cfg.MutateOps)[0]
	sidecarErr := make(chan error, 1)
	go func() {
		for off := 0; off < len(plan); off += cfg.MutateBatch {
			end := off + cfg.MutateBatch
			if end > len(plan) {
				end = len(plan)
			}
			body, err := json.Marshal(struct {
				Ops []workload.Op `json:"ops"`
			}{plan[off:end]})
			if err != nil {
				sidecarErr <- err
				return
			}
			resp, err := client.Post(ts.URL+"/v1/mutate", "application/json", bytes.NewReader(body))
			if err != nil {
				sidecarErr <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				sidecarErr <- fmt.Errorf("serve: mutate batch at %d: status %d", off, resp.StatusCode)
				return
			}
			res.MutateCals++
		}
		sidecarErr <- nil
	}()

	drive, err := workload.DriveHTTP(client, ts.URL, reqs, workload.HTTPDriverConfig{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	if err := <-sidecarErr; err != nil {
		return nil, err
	}
	if drive.Errors > 0 || drive.OK != drive.Issued {
		return nil, fmt.Errorf("serve: closed loop: %d/%d ok, %d errors (%s)",
			drive.OK, drive.Issued, drive.Errors, drive.FirstError)
	}
	res.OpsSec = float64(drive.OK) / drive.Wall.Seconds()
	res.P50, res.P99 = drive.P50(), drive.P99()
	res.MutateOps = len(plan)
	res.HitRate = app.Server().Counters().Snapshot().HitRate()

	// Verify: served answers (over the wire) are byte-identical to a fresh
	// uncached evaluation over the store's post-mutation state.
	n := len(mix.Ranked)
	if n > 8 {
		n = 8
	}
	for _, uid := range mix.Ranked[:n] {
		if err := verifyServed(client, ts.URL, app, profiles[uid], uid, cfg.K, res); err != nil {
			return nil, err
		}
	}

	// --- Phase 2: open-loop burst against an admission-gated twin ---
	gated, err := serve.New(serve.Options{
		Net: net,
		Query: admit.Config{
			Rate: cfg.AdmitRate, Burst: cfg.AdmitBurst,
			MaxQueue: cfg.AdmitQueue, SLO: cfg.SLO,
		},
	})
	if err != nil {
		return nil, err
	}
	hot := mix.Ranked
	if len(hot) > 8 {
		hot = hot[:8]
	}
	for _, uid := range hot {
		if _, err := gated.SeedSession(fmt.Sprintf("u%d", uid), profiles[uid]); err != nil {
			return nil, err
		}
	}
	ts2 := httptest.NewServer(gated.Handler())
	defer ts2.Close()
	// Warm the hot fingerprints so the burst measures admission + hit path.
	for _, uid := range hot {
		resp, err := ts2.Client().Post(ts2.URL+"/v1/query", "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"session":"u%d","k":%d}`, uid, cfg.K))))
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
	}

	burstReqs := make([]workload.HTTPRequest, cfg.BurstQueries)
	for i := range burstReqs {
		uid := hot[i%len(hot)]
		burstReqs[i] = workload.HTTPRequest{
			Method: "POST", Path: "/v1/query",
			Body: []byte(fmt.Sprintf(`{"session":"u%d","k":%d}`, uid, cfg.K)),
		}
	}
	burst, err := workload.DriveHTTP(ts2.Client(), ts2.URL, burstReqs, workload.HTTPDriverConfig{
		Open: true, OpsPerSec: cfg.BurstOpsPerSec, Seed: 97 + int64(rep), Workers: 64,
	})
	if err != nil {
		return nil, err
	}
	if burst.Errors > 0 {
		return nil, fmt.Errorf("serve: burst: %d errors (%s)", burst.Errors, burst.FirstError)
	}
	res.BurstOffered = burst.Issued
	res.BurstOfferedPS = cfg.BurstOpsPerSec
	res.AdmitRate = cfg.AdmitRate
	res.BurstOK = burst.OK
	res.BurstShed = burst.Shed
	if burst.Issued > 0 {
		res.ShedRate = float64(burst.Shed) / float64(burst.Issued)
	}
	if burst.Wall > 0 {
		res.GoodputPS = float64(burst.OK) / burst.Wall.Seconds()
	}
	res.BurstP99 = burst.P99()
	qsnap := gated.Registry().Histogram("admit_queue_query").Snapshot()
	res.QueueP99 = qsnap.QuantileDuration(0.99)
	res.SLOOK = res.BurstP99 <= cfg.P99Budget
	res.RetryAfterOK = burst.Shed > 0 && burst.ShedWithRetryAfter == burst.Shed
	return res, nil
}

// verifyServed asks the live server for one session's ranking over the wire
// and compares it, score for score, against a fresh uncached evaluation.
func verifyServed(client *http.Client, base string, app *serve.App,
	prefs []hypre.ScoredPred, uid int64, k int, res *ServeResult) error {
	resp, err := client.Post(base+"/v1/query", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"session":"u%d","k":%d}`, uid, k))))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: verify query u%d: status %d", uid, resp.StatusCode)
	}
	var body struct {
		Results []struct {
			PID   int64   `json:"pid"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	want, err := app.Uncached(prefs, k)
	if err != nil {
		return err
	}
	if len(body.Results) != len(want) {
		res.Matched = false
		return nil
	}
	for i, got := range body.Results {
		if got.PID != want[i].PID || got.Score != want[i].Intensity {
			res.Matched = false
			return nil
		}
	}
	return nil
}

// profileJSON renders a canonical profile as a PUT body.
func profileJSON(prefs []hypre.ScoredPred) (io.Reader, error) {
	entries := make([]serve.ProfileEntry, len(prefs))
	for i, p := range prefs {
		entries[i] = serve.ProfileEntry{Pred: p.Pred, Intensity: p.Intensity}
	}
	b, err := json.Marshal(struct {
		Profile []serve.ProfileEntry `json:"profile"`
	}{entries})
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(b), nil
}

// Render prints the serving rows.
func (r *ServeResult) Render(w io.Writer) {
	status := "IDENTICAL"
	if !r.Matched {
		status = "MISMATCH"
	}
	slo := "WITHIN"
	if !r.SLOOK {
		slo = "BLOWN"
	}
	retry := "ALL"
	if !r.RetryAfterOK {
		retry = "MISSING"
	}
	fprintf(w, "HTTP serve (%d sessions, %d queries x %d workers, k=%d, %d mutate ops in %d calls): %.0f q/s, p50 %v p99 %v, hit rate %.0f%%; answers %s; best of %d reps\n",
		r.Sessions, r.Queries, r.Workers, r.K, r.MutateOps, r.MutateCals,
		r.OpsSec, r.P50, r.P99, 100*r.HitRate, status, r.Reps)
	fprintf(w, "  burst: offered %d @ %.0f/s vs admit %.0f/s -> %d ok / %d shed (%.0f%% shed, Retry-After %s), goodput %.0f q/s, admitted p99 %v (budget %v, %s), queue p99 %v (SLO %v)\n",
		r.BurstOffered, r.BurstOfferedPS, r.AdmitRate, r.BurstOK, r.BurstShed,
		100*r.ShedRate, retry, r.GoodputPS, r.BurstP99, r.P99Budget, slo, r.QueueP99, r.SLO)
}
