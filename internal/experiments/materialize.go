package experiments

import (
	"io"
	"time"
)

// MaterializeResult reports the cold-cache cost of materializing one user's
// full preference profile — the setup phase every figure pays before any
// combination algebra runs, and the workload BenchmarkMaterializeProfile
// tracks across PRs.
type MaterializeResult struct {
	UID     int64
	Prefs   int           // profile size (distinct predicates counted once each)
	Queries int           // predicate cache misses in one cold materialization
	Best    time.Duration // fastest cold run
	Mean    time.Duration // mean over Reps cold runs
	Reps    int
}

// RunMaterializeBench times reps cold-cache bulk materializations of uid's
// full positive profile (a fresh evaluator each run, so every predicate is
// scanned, none served from cache).
func RunMaterializeBench(l *Lab, uid int64, reps int) (*MaterializeResult, error) {
	if reps < 1 {
		reps = 1
	}
	prefs := l.ProfileFor(uid, 0)
	res := &MaterializeResult{UID: uid, Prefs: len(prefs), Reps: reps}
	var total time.Duration
	for r := 0; r < reps; r++ {
		ev := l.Evaluator()
		start := time.Now()
		if err := ev.MaterializeAll(prefs); err != nil {
			return nil, err
		}
		d := time.Since(start)
		total += d
		if r == 0 || d < res.Best {
			res.Best = d
		}
		res.Queries = ev.Queries
	}
	res.Mean = total / time.Duration(reps)
	return res, nil
}

// Render prints the timing row.
func (r *MaterializeResult) Render(w io.Writer) {
	fprintf(w, "Profile materialization (uid=%d): %d prefs, %d predicate queries, best %v, mean %v over %d cold runs\n",
		r.UID, r.Prefs, r.Queries, r.Best, r.Mean, r.Reps)
}
