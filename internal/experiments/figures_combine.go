package experiments

import (
	"io"
	"math/rand"

	"hypre/internal/combine"
)

// Fig29Series is the intensity trajectory of one anchor preference under
// one semantics — the "first/second/third preference AND / AND_OR" lines of
// Figs. 29–31.
type Fig29Series struct {
	AnchorIndex int
	Semantics   combine.Semantics
	// Intensity per applicable pair, in partner order (inapplicable pairs
	// are dropped, as the paper's plots do).
	Intensity  []float64
	Applicable int
	Starved    int
}

// Fig29Result reproduces Figs. 29–31: Combine-Two intensity variation for
// the first three anchor preferences, under both semantics.
type Fig29Result struct {
	UID    int64
	Series []Fig29Series
}

// RunFig29CombineTwo runs Combine-Two over the profile (capped at
// profileCap) with both semantics and extracts the first three anchors'
// series.
func RunFig29CombineTwo(l *Lab, uid int64, profileCap int) (Fig29Result, error) {
	res := Fig29Result{UID: uid}
	prefs := l.ProfileFor(uid, profileCap)
	ev := l.Evaluator()
	for _, sem := range []combine.Semantics{combine.SemanticsANDOR, combine.SemanticsAND} {
		recs, err := combine.CombineTwo(prefs, ev, sem)
		if err != nil {
			return res, err
		}
		for anchor := 0; anchor < 3 && anchor < len(prefs); anchor++ {
			s := Fig29Series{AnchorIndex: anchor, Semantics: sem}
			for _, r := range recs {
				if r.AnchorIndex != anchor {
					continue
				}
				if r.NumTuples == 0 {
					s.Starved++
					continue
				}
				s.Applicable++
				s.Intensity = append(s.Intensity, r.Intensity)
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// Render prints the Fig. 29–31 series.
func (r Fig29Result) Render(w io.Writer) {
	fprintf(w, "Fig 29-31: Combine-Two intensity variation (uid=%d)\n", r.UID)
	for _, s := range r.Series {
		fprintf(w, "-- anchor %d, %s: %d applicable, %d starved\n",
			s.AnchorIndex+1, s.Semantics, s.Applicable, s.Starved)
		for i, v := range s.Intensity {
			fprintf(w, "%4d %10.4f\n", i, v)
		}
	}
}

// Fig32Result reproduces Figs. 32–34: Partially-Combine-All intensity
// variation for combinations of exactly 2, 5 and 10 preferences, plus the
// series of every combination with 10 or more preferences (Fig. 34).
type Fig32Result struct {
	UID         int64
	By2         []float64
	By5         []float64
	By10        []float64
	TenOrMore   []float64
	TotalCombos int
}

// RunFig32PartiallyCombineAll derives the series from one
// Partially-Combine-All run.
func RunFig32PartiallyCombineAll(l *Lab, uid int64, profileCap int) (Fig32Result, error) {
	res := Fig32Result{UID: uid}
	prefs := l.ProfileFor(uid, profileCap)
	ev := l.Evaluator()
	recs, err := combine.PartiallyCombineAll(prefs, ev)
	if err != nil {
		return res, err
	}
	res.TotalCombos = len(recs)
	for _, r := range recs {
		switch {
		case r.NumPreds == 2:
			res.By2 = append(res.By2, r.Intensity)
		case r.NumPreds == 5:
			res.By5 = append(res.By5, r.Intensity)
		case r.NumPreds == 10:
			res.By10 = append(res.By10, r.Intensity)
		}
		if r.NumPreds >= 10 {
			res.TenOrMore = append(res.TenOrMore, r.Intensity)
		}
	}
	return res, nil
}

// Render prints the Fig. 32–34 series.
func (r Fig32Result) Render(w io.Writer) {
	fprintf(w, "Fig 32-34: Partially-Combine-All intensity variation (uid=%d, %d combinations)\n",
		r.UID, r.TotalCombos)
	emit := func(name string, xs []float64) {
		fprintf(w, "-- %s (%d)\n", name, len(xs))
		for i, v := range xs {
			fprintf(w, "%4d %10.4f\n", i, v)
		}
	}
	emit("2 preferences", r.By2)
	emit("5 preferences", r.By5)
	emit("10 preferences", r.By10)
	emit(">=10 preferences", r.TenOrMore)
}

// Fig35Point is one Bias-Random run: how many applicable combinations it
// produced vs how many attempts returned nothing.
type Fig35Point struct {
	Seed    int64
	Valid   int
	Invalid int
}

// Fig35Result reproduces Figs. 35/36: the (valid, invalid) scatter across
// repeated Bias-Random runs.
type Fig35Result struct {
	UID    int64
	Points []Fig35Point
}

// RunFig35BiasRandom performs `runs` seeded executions of
// Bias-Random-Selection.
func RunFig35BiasRandom(l *Lab, uid int64, profileCap, runs int) (Fig35Result, error) {
	res := Fig35Result{UID: uid}
	prefs := l.ProfileFor(uid, profileCap)
	for seed := int64(0); seed < int64(runs); seed++ {
		ev := l.Evaluator()
		out, err := combine.BiasRandom(prefs, ev, rand.New(rand.NewSource(seed)), 1)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, Fig35Point{Seed: seed, Valid: out.Valid, Invalid: out.Invalid})
	}
	return res, nil
}

// InvalidToValidRatio aggregates the scatter: total invalid over total
// valid attempts (the paper's point: an order of magnitude more invalid).
func (r Fig35Result) InvalidToValidRatio() float64 {
	var v, iv int
	for _, p := range r.Points {
		v += p.Valid
		iv += p.Invalid
	}
	if v == 0 {
		return 0
	}
	return float64(iv) / float64(v)
}

// Render prints the Fig. 35/36 scatter.
func (r Fig35Result) Render(w io.Writer) {
	fprintf(w, "Fig 35/36: Bias-Random valid vs invalid combinations (uid=%d)\n", r.UID)
	fprintf(w, "%6s %8s %8s\n", "seed", "valid", "invalid")
	for _, p := range r.Points {
		fprintf(w, "%6d %8d %8d\n", p.Seed, p.Valid, p.Invalid)
	}
	fprintf(w, "invalid/valid ratio: %.2f\n", r.InvalidToValidRatio())
}
