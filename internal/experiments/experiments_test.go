package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"hypre/internal/workload"
)

var (
	labOnce sync.Once
	testLab *Lab
	labErr  error
)

// lab returns a shared, small experimental setup (built once per test run).
func lab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.NumPapers = 1200
		cfg.NumAuthors = 400
		cfg.NumVenues = 20
		testLab, labErr = NewLab(cfg)
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return testLab
}

func TestLabSetup(t *testing.T) {
	l := lab(t)
	if l.Rich < 0 || l.Modest < 0 {
		t.Fatal("exemplar users not found")
	}
	counts := l.Prefs.CountByUser()
	if counts[l.Rich] < counts[l.Modest] {
		t.Errorf("rich user has fewer prefs (%d) than modest (%d)",
			counts[l.Rich], counts[l.Modest])
	}
	if len(l.ProfileFor(l.Rich, 0)) == 0 {
		t.Error("rich profile empty")
	}
	if got := len(l.ProfileFor(l.Rich, 5)); got != 5 {
		t.Errorf("profile cap = %d", got)
	}
}

func TestTable10(t *testing.T) {
	l := lab(t)
	r := RunTable10(l)
	byName := map[string]RelationStat{}
	for _, rel := range r.Relations {
		byName[rel.Name] = rel
	}
	if byName["dblp"].Arity != 5 || byName["dblp"].Cardinality != 1200 {
		t.Errorf("dblp = %+v", byName["dblp"])
	}
	if r.QuantPrefs == 0 || r.QualPrefs == 0 {
		t.Error("preference tables empty")
	}
	// Qualitative extraction only needs citations, so every quant user is
	// not necessarily a qual user; both must be positive.
	if r.DistinctQuant == 0 || r.DistinctQual == 0 {
		t.Error("no distinct users")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "dblp_author") {
		t.Error("render missing relation")
	}
}

func TestTable11(t *testing.T) {
	l := lab(t)
	r, err := RunTable11(l)
	if err != nil {
		t.Fatal(err)
	}
	if r.QuantCount != len(l.Prefs.Quant) || r.QualCount != len(l.Prefs.Qual) {
		t.Errorf("counts = %d/%d, want %d/%d",
			r.QuantCount, r.QualCount, len(l.Prefs.Quant), len(l.Prefs.Qual))
	}
	if r.QuantTime <= 0 || r.QualTime <= 0 {
		t.Error("zero timings")
	}
	if r.Stats.Nodes == 0 || r.Stats.Prefers == 0 {
		t.Errorf("graph stats = %+v", r.Stats)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Qualitative") {
		t.Error("render incomplete")
	}
}

func TestTable12(t *testing.T) {
	l := lab(t)
	r, err := RunTable12(l, l.Modest)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 strategies", len(r.Rows))
	}
	seeds := map[float64]bool{}
	for _, row := range r.Rows {
		if row.ProfileSize == 0 {
			t.Errorf("strategy %s produced empty profile", row.Strategy)
		}
		seeds[row.SeedObserved] = true
	}
	// Strategies must actually differ on a non-trivial profile.
	if len(seeds) < 2 {
		t.Errorf("all strategies yielded the same seed: %v", seeds)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "avg_pos") {
		t.Error("render missing strategy")
	}
}

func TestFig13(t *testing.T) {
	r := RunFig13(5, 2000)
	if len(r.Points) != 5 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, p := range r.Points {
		if p.TotalNodes != (i+1)*2000 {
			t.Errorf("point %d total = %d", i, p.TotalNodes)
		}
		if p.BatchTime <= 0 {
			t.Error("zero batch time")
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "TotalNodes") {
		t.Error("render incomplete")
	}
}

func TestFig17(t *testing.T) {
	l := lab(t)
	r := RunFig17(l)
	if r.Users == 0 || len(r.Bins) == 0 {
		t.Fatal("empty distribution")
	}
	if r.TailRatio < 0.5 {
		t.Errorf("tail ratio = %v, expected long tail", r.TailRatio)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "PrefCount") {
		t.Error("render incomplete")
	}
}

func TestFig18Utility(t *testing.T) {
	l := lab(t)
	r, err := RunFig18Utility(l, l.Modest, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	if len(r.AllRecords) == 0 {
		t.Fatal("no combinations")
	}
	two := r.Series[0]
	if two.NumPreds != 2 || len(two.Utility) == 0 {
		t.Fatalf("2-pref series empty")
	}
	for i, u := range two.Utility {
		if u < 0 {
			t.Errorf("negative utility at %d", i)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	r.RenderTuplesIntensity(&buf)
	if !strings.Contains(buf.String(), "Fig 20-25") {
		t.Error("render incomplete")
	}
}

func TestFig26PrefGrowth(t *testing.T) {
	l := lab(t)
	for _, uid := range l.Users() {
		r := RunFig26PrefGrowth(l, uid)
		if r.FromQuantTable == 0 {
			t.Fatalf("uid=%d has no quantitative prefs", uid)
		}
		// The paper's headline: conversion grows the usable preference set
		// (36 -> 172 for uid=2; 24 -> 50 for uid=38437).
		if r.FromGraph <= r.FromQuantTable {
			t.Errorf("uid=%d: no growth (%d -> %d)", uid, r.FromQuantTable, r.FromGraph)
		}
		if g := r.GrowthFactor(); g <= 1 {
			t.Errorf("growth factor = %v", g)
		}
	}
	var buf bytes.Buffer
	RunFig26PrefGrowth(l, l.Rich).Render(&buf)
	if !strings.Contains(buf.String(), "HYPRE graph") {
		t.Error("render incomplete")
	}
}

func TestFig28Coverage(t *testing.T) {
	l := lab(t)
	for _, uid := range l.Users() {
		r, err := RunFig28Coverage(l, uid)
		if err != nil {
			t.Fatal(err)
		}
		cov := map[string]int{}
		for _, row := range r.Rows {
			cov[row.Source] = row.Tuples
		}
		// Shape of Fig. 28: HYPRE >= QT+QL >= QT, and HYPRE strictly gains.
		if cov["QT+QL"] < cov["QT"] {
			t.Errorf("uid=%d: QT+QL (%d) < QT (%d)", uid, cov["QT+QL"], cov["QT"])
		}
		if cov["HYPRE_Graph"] < cov["QT+QL"] {
			t.Errorf("uid=%d: HYPRE (%d) < QT+QL (%d)", uid, cov["HYPRE_Graph"], cov["QT+QL"])
		}
		if r.Gain("QT") <= 1 {
			t.Errorf("uid=%d: no coverage gain over QT (%.2f)", uid, r.Gain("QT"))
		}
	}
}

func TestFig29CombineTwo(t *testing.T) {
	l := lab(t)
	r, err := RunFig29CombineTwo(l, l.Modest, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 6 { // 3 anchors x 2 semantics
		t.Fatalf("series = %d", len(r.Series))
	}
	// AND_OR must starve no more than AND for the same anchor (OR pairs
	// always return the union).
	for i := 0; i < 3; i++ {
		andor, and := r.Series[i], r.Series[i+3]
		if andor.AnchorIndex != and.AnchorIndex {
			t.Fatal("series misaligned")
		}
		if andor.Starved > and.Starved {
			t.Errorf("anchor %d: AND_OR starved more (%d) than AND (%d)",
				i, andor.Starved, and.Starved)
		}
	}
}

func TestFig32PartiallyCombineAll(t *testing.T) {
	l := lab(t)
	r, err := RunFig32PartiallyCombineAll(l, l.Modest, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalCombos == 0 || len(r.By2) == 0 {
		t.Fatal("no combinations")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "2 preferences") {
		t.Error("render incomplete")
	}
}

func TestFig35BiasRandom(t *testing.T) {
	l := lab(t)
	r, err := RunFig35BiasRandom(l, l.Modest, 12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 10 {
		t.Fatalf("points = %d", len(r.Points))
	}
	totalInvalid := 0
	for _, p := range r.Points {
		totalInvalid += p.Invalid
	}
	// The paper's message: random selection wastes many attempts.
	if totalInvalid == 0 {
		t.Error("no invalid attempts across seeds")
	}
	if r.InvalidToValidRatio() <= 0 {
		t.Errorf("ratio = %v", r.InvalidToValidRatio())
	}
}

func TestFig37PEPSvsTA(t *testing.T) {
	l := lab(t)
	r, err := RunFig37PEPSvsTA(l, l.Modest, 200, 12)
	if err != nil {
		t.Fatal(err)
	}
	// §7.6.3 headline 1: on quantitative-only preferences PEPS and TA agree
	// exactly — 100% similarity and 100% overlap.
	if r.QTSimilarity < 0.999 {
		t.Errorf("QT similarity = %v, want 1.0", r.QTSimilarity)
	}
	if r.QTOverlap < 0.999 {
		t.Errorf("QT overlap = %v, want 1.0", r.QTOverlap)
	}
	// Headline 2: with the hybrid graph PEPS sees more preferences, so the
	// lists diverge (similarity < 1) but shared tuples keep TA's order.
	if r.HybridSimilarity >= 0.999 {
		t.Errorf("hybrid similarity = %v, expected divergence", r.HybridSimilarity)
	}
	// Headline 3: PEPS finds at least as many high-intensity tuples.
	if r.PEPSAboveThr < r.TAAboveThr {
		t.Errorf("PEPS above-threshold %d < TA %d", r.PEPSAboveThr, r.TAAboveThr)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "similarity") {
		t.Error("render incomplete")
	}
}

func TestFig39PEPSTime(t *testing.T) {
	l := lab(t)
	r, err := RunFig39PEPSTime(l, l.Modest, []int{10, 50, 100}, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if p.CompleteT <= 0 || p.ApproxT <= 0 || p.QuantOnlyT <= 0 {
			t.Errorf("zero timing at k=%d", p.K)
		}
	}
	if r.PairBuildTime <= 0 {
		t.Error("no pair build time")
	}
}

func TestAblationComposition(t *testing.T) {
	r := RunAblationComposition()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]CompositionRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	// Proposition 1: f∧ is order-independent; Proposition 2: f∨ is not.
	if byName["f_and (Eq 4.3)"].OrderSpread > 1e-9 {
		t.Errorf("f∧ order spread = %v", byName["f_and (Eq 4.3)"].OrderSpread)
	}
	if byName["f_or (Eq 4.4)"].OrderSpread <= 0 {
		t.Error("f∨ should be order-dependent")
	}
	if !byName["f_and (Eq 4.3)"].Inflationary {
		t.Error("f∧ should be inflationary")
	}
	if !byName["f_or (Eq 4.4)"].Reserved || !byName["avg"].Reserved {
		t.Error("f∨ and avg should be reserved")
	}
	if byName["min"].Inflationary {
		t.Error("min is not inflationary")
	}
}

func TestAblationPEPS(t *testing.T) {
	l := lab(t)
	r, err := RunAblationPEPS(l, l.Modest, 100, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r.CompleteTuples == 0 {
		t.Fatal("complete returned nothing")
	}
	if r.ApproxExpanded > r.CompleteExpanded {
		t.Errorf("approximate expanded more (%d > %d)", r.ApproxExpanded, r.CompleteExpanded)
	}
	if r.Recall < 0 || r.Recall > 1 {
		t.Errorf("recall = %v", r.Recall)
	}
}

func TestAblationPairCache(t *testing.T) {
	l := lab(t)
	r, err := RunAblationPairCache(l, l.Modest, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.SQLQueries == 0 {
		t.Fatal("no SQL queries issued")
	}
	if r.CachedTime <= 0 || r.SQLTime <= 0 {
		t.Error("zero timings")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("render incomplete")
	}
}

func TestCacheServeObservability(t *testing.T) {
	l := lab(t)
	cfg := DefaultCacheServeConfig()
	cfg.Queries = 80
	cfg.Workers = 4
	cfg.DedupWaiters = 8
	cfg.ChurnBatches = 2
	cfg.ChurnOps = 20
	cfg.Reps = 1
	r, err := RunCacheServe(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Matched {
		t.Fatal("cached answers diverged from uncached evaluation")
	}
	if !r.TraceCoverageOK {
		t.Fatalf("trace span coverage out of bounds: min %.3f over %d traced queries",
			r.TraceCoverageMin, r.TraceQueries)
	}
	if r.TraceQueries == 0 {
		t.Fatal("traced verification phase ran no queries")
	}
	if len(r.Routes) == 0 {
		t.Fatal("no per-route histograms populated")
	}
	var total int64
	for _, rs := range r.Routes {
		if rs.Count <= 0 || rs.P50 <= 0 || rs.P99 < rs.P50 {
			t.Errorf("route %s: implausible stats %+v", rs.Route, rs)
		}
		total += rs.Count
	}
	// Every request of the cache-on phases lands in exactly one route
	// histogram: replay + burst + churn replays + verify + traced replay.
	if want := r.Snapshot.Hits + r.Snapshot.Misses + r.Snapshot.SharedWaits + r.Snapshot.StaleBypasses; total != want {
		t.Errorf("route histogram counts %d != served requests %d", total, want)
	}
	if r.Snapshot.Misses != r.Snapshot.PlanHits+r.Snapshot.Evaluations {
		t.Errorf("Misses %d != PlanHits %d + Evaluations %d",
			r.Snapshot.Misses, r.Snapshot.PlanHits, r.Snapshot.Evaluations)
	}
	if r.ServedRate < r.HitRate {
		t.Errorf("ServedRate %.3f < HitRate %.3f", r.ServedRate, r.HitRate)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"served", "route", "span coverage", "slow log"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
