package experiments

import (
	"io"
	"math"
	"time"

	"hypre/internal/combine"
	"hypre/internal/hypre"
)

// CompositionRow is one alternative composition function's behaviour on the
// same preference list.
type CompositionRow struct {
	Name string
	// OrderSpread is the max-min combined value over all 6 orderings of a
	// 3-preference composition; 0 means order-independent (Prop. 1 holds
	// only for f∧).
	OrderSpread float64
	// Inflationary reports whether the combined value of two preferences
	// always dominates both inputs on the sample grid.
	Inflationary bool
	// Reserved reports whether the combined value always lies between the
	// inputs.
	Reserved bool
}

// AblationCompositionResult compares the paper's f∧/f∨ choices (Eq. 4.3 and
// 4.4) against min/max/avg composition — the §4.6.1 design choice.
type AblationCompositionResult struct {
	Rows []CompositionRow
}

// RunAblationComposition evaluates each candidate on a grid of intensity
// triples.
func RunAblationComposition() AblationCompositionResult {
	candidates := []struct {
		name string
		f    func(a, b float64) float64
	}{
		{"f_and (Eq 4.3)", hypre.FAnd},
		{"f_or (Eq 4.4)", hypre.FOr},
		{"min", math.Min},
		{"max", math.Max},
		{"avg", func(a, b float64) float64 { return (a + b) / 2 }},
	}
	var res AblationCompositionResult
	grid := []float64{0, 0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1}
	for _, c := range candidates {
		row := CompositionRow{Name: c.name, Inflationary: true, Reserved: true}
		for _, p1 := range grid {
			for _, p2 := range grid {
				v := c.f(p1, p2)
				if v < math.Max(p1, p2)-1e-12 {
					row.Inflationary = false
				}
				if v < math.Min(p1, p2)-1e-12 || v > math.Max(p1, p2)+1e-12 {
					row.Reserved = false
				}
				for _, p3 := range grid {
					orders := []float64{
						c.f(p1, c.f(p2, p3)), c.f(p2, c.f(p1, p3)), c.f(p3, c.f(p1, p2)),
					}
					lo, hi := orders[0], orders[0]
					for _, o := range orders[1:] {
						lo = math.Min(lo, o)
						hi = math.Max(hi, o)
					}
					if hi-lo > row.OrderSpread {
						row.OrderSpread = hi - lo
					}
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the composition comparison.
func (r AblationCompositionResult) Render(w io.Writer) {
	fprintf(w, "Ablation: composition functions\n")
	fprintf(w, "%-16s %12s %13s %9s\n", "Function", "OrderSpread", "Inflationary", "Reserved")
	for _, row := range r.Rows {
		fprintf(w, "%-16s %12.4f %13v %9v\n", row.Name, row.OrderSpread, row.Inflationary, row.Reserved)
	}
}

// AblationPEPSResult compares Complete vs Approximate PEPS on recall and
// work (§5.5.2's trade-off).
type AblationPEPSResult struct {
	UID              int64
	K                int
	CompleteTuples   int
	ApproxTuples     int
	Recall           float64 // approximate ∩ complete / complete
	CompleteExpanded int
	ApproxExpanded   int
	CompleteTime     time.Duration
	ApproxTime       time.Duration
}

// RunAblationPEPS measures both variants on one user.
func RunAblationPEPS(l *Lab, uid int64, k, profileCap int) (AblationPEPSResult, error) {
	res := AblationPEPSResult{UID: uid, K: k}
	prefs := l.ProfileFor(uid, profileCap)
	ev := l.Evaluator()
	pt, err := combine.BuildPairTable(prefs, ev)
	if err != nil {
		return res, err
	}
	start := time.Now()
	comp, err := combine.PEPS(prefs, pt, ev, k, combine.Complete)
	if err != nil {
		return res, err
	}
	res.CompleteTime = time.Since(start)
	start = time.Now()
	appr, err := combine.PEPS(prefs, pt, ev, k, combine.Approximate)
	if err != nil {
		return res, err
	}
	res.ApproxTime = time.Since(start)

	res.CompleteTuples = len(comp.Tuples)
	res.ApproxTuples = len(appr.Tuples)
	res.CompleteExpanded = comp.CombosExpanded
	res.ApproxExpanded = appr.CombosExpanded
	compSet := map[int64]bool{}
	for _, t := range comp.Tuples {
		compSet[t.PID] = true
	}
	hit := 0
	for _, t := range appr.Tuples {
		if compSet[t.PID] {
			hit++
		}
	}
	if res.CompleteTuples > 0 {
		res.Recall = float64(hit) / float64(res.CompleteTuples)
	}
	return res, nil
}

// Render prints the PEPS variant comparison.
func (r AblationPEPSResult) Render(w io.Writer) {
	fprintf(w, "Ablation: Complete vs Approximate PEPS (uid=%d, k=%d)\n", r.UID, r.K)
	fprintf(w, "complete:    %d tuples, %d combos expanded, %s\n",
		r.CompleteTuples, r.CompleteExpanded, r.CompleteTime.Round(time.Microsecond))
	fprintf(w, "approximate: %d tuples, %d combos expanded, %s (recall %.2f)\n",
		r.ApproxTuples, r.ApproxExpanded, r.ApproxTime.Round(time.Microsecond), r.Recall)
}

// AblationPairCacheResult prices the §5.5 pre-computed pair table: the same
// pair enumeration answered by cached set algebra vs fresh SQL queries.
type AblationPairCacheResult struct {
	UID        int64
	Pairs      int
	CachedTime time.Duration
	SQLTime    time.Duration
	SQLQueries int
}

// RunAblationPairCache measures pair-table construction with and without
// the per-predicate set cache.
func RunAblationPairCache(l *Lab, uid int64, profileCap int) (AblationPairCacheResult, error) {
	res := AblationPairCacheResult{UID: uid}
	prefs := l.ProfileFor(uid, profileCap)

	ev := l.Evaluator()
	start := time.Now()
	pt, err := combine.BuildPairTable(prefs, ev)
	if err != nil {
		return res, err
	}
	res.CachedTime = time.Since(start)
	res.Pairs = len(pt.Pairs)

	evSQL := l.Evaluator()
	start = time.Now()
	for i := 0; i < len(prefs); i++ {
		for j := i + 1; j < len(prefs); j++ {
			c := combine.NewCombo(prefs[i]).And(prefs[j])
			if _, err := evSQL.CountSQL(c); err != nil {
				return res, err
			}
		}
	}
	res.SQLTime = time.Since(start)
	res.SQLQueries = evSQL.Queries
	return res, nil
}

// Render prints the pair-cache pricing.
func (r AblationPairCacheResult) Render(w io.Writer) {
	fprintf(w, "Ablation: pair-table pre-computation (uid=%d, %d applicable pairs)\n", r.UID, r.Pairs)
	fprintf(w, "cached set algebra: %s\n", r.CachedTime.Round(time.Microsecond))
	fprintf(w, "fresh SQL queries:  %s (%d queries)\n", r.SQLTime.Round(time.Microsecond), r.SQLQueries)
	if r.CachedTime > 0 {
		fprintf(w, "speedup: %.1fx\n", float64(r.SQLTime)/float64(r.CachedTime))
	}
}
