package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunUpdateStream: the update-stream experiment must keep incremental
// and rematerialized rankings byte-identical on every batch, actually
// exercise the incremental path (no silent full rebuilds), and report
// nonzero work.
func TestRunUpdateStream(t *testing.T) {
	l := lab(t)
	r, err := RunUpdateStream(l, l.Modest, 4, 40, 80, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Matched {
		t.Fatal("incremental ranking diverged from rematerialization")
	}
	if r.FullRebuilds != 0 {
		t.Fatalf("expected pure incremental maintenance, got %d full rebuilds", r.FullRebuilds)
	}
	if r.TouchedRows == 0 {
		t.Fatal("update stream touched no rows; the experiment is vacuous")
	}
	if r.Inserts+r.Deletes+r.Updates+r.LinkOps != 4*40 {
		t.Fatalf("op accounting off: %d+%d+%d+%d != 160",
			r.Inserts, r.Deletes, r.Updates, r.LinkOps)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "rankings IDENTICAL") {
		t.Fatalf("render missing verdict: %q", buf.String())
	}
}
