package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
	"hypre/internal/workload"
)

// StreamResult is the sustained-stream write-path experiment in three
// phases, all over stores with group commit, tombstone compaction, and a
// bounded change log enabled:
//
//  1. Throughput: the same pid-disjoint op partitions are executed by
//     `writers` concurrent goroutines — with streamReaders concurrent scan
//     goroutines as background read load — against a group-commit store and
//     a serial twin (identical options minus group commit), and the final
//     logical states are required to be identical — group commit must be a
//     pure scheduling change.
//  2. Staleness: an open-loop paced arrival stream (exponential
//     interarrivals at OfferedOpsPerSec) runs against a concurrent delta
//     maintainer; staleness is the age of the oldest unsynced commit when
//     its sync completes, reported at p50/p99.
//  3. Flatness: the per-Sync maintenance median at the base table size and
//     at 4x the papers, same per-sync op batch — the delta path's cost must
//     track the batch, not the table.
type StreamResult struct {
	UID         int64
	ProfileSize int
	Writers     int
	PerWriter   int
	K           int

	// Phase 1: closed-loop throughput under concurrent reader load, group
	// commit vs serial twin.
	Readers         int   // concurrent scan goroutines during the stream
	GroupScans      int64 // full-table counts the readers completed
	SerialScans     int64
	GroupWall       time.Duration
	SerialWall      time.Duration
	GroupOpsPerSec  float64
	SerialOpsPerSec float64
	Speedup         float64
	Matched         bool // final logical state + ranking equivalence

	// Phase 2: open-loop staleness under paced load.
	OfferedOpsPerSec float64
	StreamOps        int
	Syncs            int
	P50Staleness     time.Duration
	P99Staleness     time.Duration

	// Phase 3: per-Sync maintenance medians, base vs 4x papers.
	SyncBatches    int
	OpsPerSync     int
	SyncMedianBase time.Duration
	SyncMedian4x   time.Duration
	FlatnessRatio  float64
}

// streamStoreOpts is the write-path configuration under test: group commit
// on or off is the only axis phase 1 varies; compaction and the bounded
// change log are on for both twins so the comparison isolates the commit
// strategy.
func streamStoreOpts(group bool) []relstore.DBOption {
	return []relstore.DBOption{
		relstore.WithGroupCommit(group),
		relstore.WithCompaction(0.25),
		relstore.WithChangeLogCap(1 << 16),
	}
}

// streamReaders is the concurrent scan load phase 1 runs against both
// twins while the writers stream.
const streamReaders = 2

// RunStream runs all three phases. uid's positive profile (capped at cap)
// drives the equivalence ranking and the maintenance syncs.
func RunStream(l *Lab, uid int64, writers, perWriter int, opsPerSec float64, streamOps, k, cap int) (*StreamResult, error) {
	prefs := l.ProfileFor(uid, cap)
	res := &StreamResult{
		UID: uid, ProfileSize: len(prefs),
		Writers: writers, PerWriter: perWriter, K: k,
		OfferedOpsPerSec: opsPerSec, StreamOps: streamOps,
	}

	// ---- Phase 1: group-commit vs serial twin throughput. ----
	groupNet, err := workload.GenerateWith(l.Cfg, streamStoreOpts(true)...)
	if err != nil {
		return nil, err
	}
	serialNet, err := workload.GenerateWith(l.Cfg, streamStoreOpts(false)...)
	if err != nil {
		return nil, err
	}
	stream, err := workload.NewUpdateStream(groupNet, workload.DefaultStreamConfig())
	if err != nil {
		return nil, err
	}
	// One plan set serves both stores: ops are pid-keyed (compaction-proof)
	// and pid-disjoint across writers (interleaving-proof), so any
	// execution order reaches the same logical state.
	plans := stream.PlanPartitions(writers, perWriter)

	res.Readers = streamReaders
	if res.GroupWall, res.GroupScans, err = runPartitions(groupNet.DB, plans, streamReaders); err != nil {
		return nil, err
	}
	if res.SerialWall, res.SerialScans, err = runPartitions(serialNet.DB, plans, streamReaders); err != nil {
		return nil, err
	}
	totalOps := float64(writers * perWriter)
	res.GroupOpsPerSec = totalOps / res.GroupWall.Seconds()
	res.SerialOpsPerSec = totalOps / res.SerialWall.Seconds()
	res.Speedup = res.GroupOpsPerSec / res.SerialOpsPerSec

	// Equivalence: identical logical state (per-pid attributes and link
	// multiset — physical row order legitimately differs between the twins),
	// and identical top-k rankings modulo the trailing tie group the heap's
	// cut can resolve either way across row orders.
	res.Matched = sameLogicalState(groupNet.DB, serialNet.DB)
	if res.Matched {
		gRank, err := rankOver(groupNet.DB, prefs, k)
		if err != nil {
			return nil, err
		}
		sRank, err := rankOver(serialNet.DB, prefs, k)
		if err != nil {
			return nil, err
		}
		res.Matched = sameRanking(trimTailTies(gRank), trimTailTies(sRank))
	}

	// ---- Phase 2: open-loop staleness under a paced arrival stream. ----
	if err := runPacedStream(l.Cfg, prefs, opsPerSec, streamOps, res); err != nil {
		return nil, err
	}

	// ---- Phase 3: sync-cost flatness at 4x the papers. ----
	// 17 batches: the median of a small sample set on a busy single-CPU
	// machine is itself noisy; a wider set keeps one GC pause or scheduler
	// hiccup from moving the 50th percentile.
	const syncBatches, opsPerSync = 17, 60
	res.SyncBatches, res.OpsPerSync = syncBatches, opsPerSync
	if res.SyncMedianBase, err = syncMedian(l.Cfg, prefs, syncBatches, opsPerSync); err != nil {
		return nil, err
	}
	cfg4 := l.Cfg
	cfg4.NumPapers *= 4
	if res.SyncMedian4x, err = syncMedian(cfg4, prefs, syncBatches, opsPerSync); err != nil {
		return nil, err
	}
	res.FlatnessRatio = float64(res.SyncMedian4x) / float64(max64(1, int64(res.SyncMedianBase)))
	return res, nil
}

// runPartitions executes each writer's partition in its own goroutine,
// with `readers` concurrent scan goroutines looping a full-table count for
// the duration of the stream, and returns the wall time for all writers to
// finish plus the number of scans the readers completed. The reader load is
// not decoration: it is the serving-while-writing regime the write path is
// for, and it is where the commit strategies diverge most — every reader
// admission gap is re-fought per mutation on the serial path but once per
// hold under group commit.
func runPartitions(db *relstore.DB, plans [][]workload.Op, readers int) (time.Duration, int64, error) {
	errs := make([]error, len(plans))
	var stop atomic.Bool
	var scans atomic.Int64
	var rwg sync.WaitGroup
	scanQ := relstore.Query{From: "dblp", Where: predicate.True{}}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for !stop.Load() {
				if _, err := db.Count(scanQ); err != nil {
					return
				}
				scans.Add(1)
			}
		}()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := range plans {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, op := range plans[w] {
				if err := op.Do(db); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	stop.Store(true)
	rwg.Wait()
	for _, err := range errs {
		if err != nil {
			return wall, scans.Load(), err
		}
	}
	return wall, scans.Load(), nil
}

// rankOver answers the top-k query over a store from scratch.
func rankOver(db *relstore.DB, prefs []hypre.ScoredPred, k int) ([]combine.ScoredTuple, error) {
	ev := combine.NewEvaluator(db, workload.BaseQuery, "dblp.pid")
	pt, err := combine.BuildPairTable(prefs, ev)
	if err != nil {
		return nil, err
	}
	r, err := combine.PEPS(prefs, pt, ev, k, combine.Complete)
	if err != nil {
		return nil, err
	}
	return r.Tuples, nil
}

// sameLogicalState compares two stores' dblp and dblp_author contents as
// logical multisets keyed by pid — the row-order-independent equivalence the
// pid-disjoint partitions guarantee.
func sameLogicalState(a, b *relstore.DB) bool {
	ap, al := logicalState(a)
	bp, bl := logicalState(b)
	if len(ap) != len(bp) || len(al) != len(bl) {
		return false
	}
	for pid, sig := range ap {
		if bp[pid] != sig {
			return false
		}
	}
	for link, n := range al {
		if bl[link] != n {
			return false
		}
	}
	return true
}

// logicalState fingerprints a store: papers as pid -> "venue|year", links
// as "pid|aid" -> multiplicity.
func logicalState(db *relstore.DB) (papers map[int64]string, links map[string]int) {
	papers = map[int64]string{}
	links = map[string]int{}
	dblp := db.Table("dblp")
	for id := 0; id < dblp.Len(); id++ {
		if !dblp.Alive(id) {
			continue
		}
		pid := dblp.Value(id, "pid").AsInt()
		papers[pid] = dblp.Value(id, "venue").AsString() + "|" + dblp.Value(id, "year").String()
	}
	la := db.Table("dblp_author")
	for id := 0; id < la.Len(); id++ {
		if !la.Alive(id) {
			continue
		}
		links[fmt.Sprintf("%d|%d", la.Value(id, "pid").AsInt(), la.Value(id, "aid").AsInt())]++
	}
	return papers, links
}

// trimTailTies drops the trailing equal-intensity group: when the k-th and
// (k+1)-th candidates tie, which of them makes the heap's cut depends on
// physical row order, which legitimately differs between the twins. The
// strictly-ranked prefix must still match exactly.
func trimTailTies(ts []combine.ScoredTuple) []combine.ScoredTuple {
	if len(ts) == 0 {
		return ts
	}
	last := ts[len(ts)-1].Intensity
	i := len(ts)
	for i > 0 && ts[i-1].Intensity == last {
		i--
	}
	return ts[:i]
}

// runPacedStream drives phase 2: a single paced writer (open-loop arrivals)
// against a concurrent maintainer sync loop, measuring commit-to-sync
// staleness.
func runPacedStream(cfg workload.Config, prefs []hypre.ScoredPred, opsPerSec float64, streamOps int, res *StreamResult) error {
	net, err := workload.GenerateWith(cfg, streamStoreOpts(true)...)
	if err != nil {
		return err
	}
	stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
	if err != nil {
		return err
	}
	plan := stream.PlanPartitions(1, streamOps)[0]
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	m, err := delta.NewMaintainer(ev, prefs)
	if err != nil {
		return err
	}

	// oldestPending is the commit time of the earliest op no sync has
	// absorbed yet (0 = none). The writer stamps it after each op; the sync
	// loop claims it before syncing and records age once the sync lands —
	// a conservative overestimate of true staleness, which is the safe side
	// for an acceptance metric.
	var oldestPending atomic.Int64
	var done atomic.Bool
	var samples []time.Duration
	var syncErr error
	syncs := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			stopping := done.Load()
			t0 := oldestPending.Swap(0)
			if t0 != 0 {
				if _, err := m.Sync(); err != nil {
					syncErr = err
					return
				}
				syncs++
				samples = append(samples, time.Duration(time.Now().UnixNano()-t0))
			}
			if stopping && oldestPending.Load() == 0 {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	pacer := workload.NewPacer(cfg.Seed+99, opsPerSec)
	start := time.Now()
	for _, op := range plan {
		if at := pacer.Next(); at > time.Since(start) {
			time.Sleep(at - time.Since(start))
		}
		if err := op.Do(net.DB); err != nil {
			done.Store(true)
			wg.Wait()
			return err
		}
		oldestPending.CompareAndSwap(0, time.Now().UnixNano())
	}
	done.Store(true)
	wg.Wait()
	if syncErr != nil {
		return syncErr
	}
	res.Syncs = syncs
	res.P50Staleness = percentileDur(samples, 0.50)
	res.P99Staleness = percentileDur(samples, 0.99)
	return nil
}

// syncMedian measures the per-Sync maintenance median over batches of
// opsPerSync ops at the given table scale.
func syncMedian(cfg workload.Config, prefs []hypre.ScoredPred, batches, opsPerSync int) (time.Duration, error) {
	net, err := workload.GenerateWith(cfg, streamStoreOpts(true)...)
	if err != nil {
		return 0, err
	}
	stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
	if err != nil {
		return 0, err
	}
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	m, err := delta.NewMaintainer(ev, prefs)
	if err != nil {
		return 0, err
	}
	samples := make([]time.Duration, 0, batches)
	for b := 0; b < batches; b++ {
		if _, err := stream.Apply(opsPerSync); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := m.Sync(); err != nil {
			return 0, err
		}
		samples = append(samples, time.Since(start))
	}
	return percentileDur(samples, 0.50), nil
}

// percentileDur is the nearest-rank percentile of a duration sample set.
func percentileDur(s []time.Duration, p float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Render prints all three phases.
func (r *StreamResult) Render(w io.Writer) {
	status := "IDENTICAL"
	if !r.Matched {
		status = "MISMATCH"
	}
	fprintf(w, "Sustained stream (uid=%d, %d prefs, k=%d):\n", r.UID, r.ProfileSize, r.K)
	fprintf(w, "  group commit: %d writers x %d ops + %d readers in %v (%.0f ops/s, %d scans) vs serial %v (%.0f ops/s, %d scans) — %.2fx; final states %s\n",
		r.Writers, r.PerWriter, r.Readers, r.GroupWall, r.GroupOpsPerSec, r.GroupScans,
		r.SerialWall, r.SerialOpsPerSec, r.SerialScans, r.Speedup, status)
	fprintf(w, "  open loop: %d ops offered at %.0f ops/s, %d syncs, staleness p50 %v p99 %v\n",
		r.StreamOps, r.OfferedOpsPerSec, r.Syncs, r.P50Staleness, r.P99Staleness)
	fprintf(w, "  flatness: per-sync median %v at base vs %v at 4x papers (%.2fx, %d batches x %d ops)\n",
		r.SyncMedianBase, r.SyncMedian4x, r.FlatnessRatio, r.SyncBatches, r.OpsPerSync)
}
