package experiments

import (
	"io"
	"time"

	"hypre/internal/graphdb"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/workload"
)

// Table10Result reproduces Table 10: per-relation arity and cardinality of
// the DBLP database, plus the preference-table cardinalities.
type Table10Result struct {
	Relations      []RelationStat
	QuantPrefs     int
	QualPrefs      int
	DistinctQuant  int
	DistinctQual   int
	PreferredUsers int
}

// RelationStat is one row of Table 10.
type RelationStat struct {
	Name        string
	Arity       int
	Cardinality int
}

// RunTable10 computes the dataset statistics.
func RunTable10(l *Lab) Table10Result {
	var res Table10Result
	for _, s := range l.Net.DB.Stats() {
		res.Relations = append(res.Relations, RelationStat{s.Name, s.Arity, s.Cardinality})
	}
	res.QuantPrefs = len(l.Prefs.Quant)
	res.QualPrefs = len(l.Prefs.Qual)
	quantUsers := map[int64]bool{}
	qualUsers := map[int64]bool{}
	for _, q := range l.Prefs.Quant {
		quantUsers[q.UID] = true
	}
	for _, q := range l.Prefs.Qual {
		qualUsers[q.UID] = true
	}
	res.DistinctQuant = len(quantUsers)
	res.DistinctQual = len(qualUsers)
	res.PreferredUsers = len(l.Prefs.Users)
	return res
}

// Render prints the Table 10 rows.
func (r Table10Result) Render(w io.Writer) {
	fprintf(w, "Table 10: Statistics for the DBLP Database (synthetic)\n")
	fprintf(w, "%-16s %6s %12s\n", "Relation", "Arity", "Cardinality")
	for _, rel := range r.Relations {
		fprintf(w, "%-16s %6d %12d\n", rel.Name, rel.Arity, rel.Cardinality)
	}
	fprintf(w, "%-16s %6d %12d   (%d distinct users)\n", "quantitative_pref", 4, r.QuantPrefs, r.DistinctQuant)
	fprintf(w, "%-16s %6d %12d   (%d distinct users)\n", "qualitative_pref", 5, r.QualPrefs, r.DistinctQual)
}

// Table11Result reproduces Table 11: wall-clock time to insert all
// quantitative preferences (batch) vs all qualitative preferences
// (per-edge, with conflict resolution).
type Table11Result struct {
	QuantCount int
	QuantTime  time.Duration
	QualCount  int
	QualTime   time.Duration
	Stats      hypre.Stats
}

// RunTable11 rebuilds the HYPRE graph from scratch, timing the two steps of
// Algorithm 1 separately.
func RunTable11(l *Lab) (Table11Result, error) {
	var res Table11Result
	g := hypre.NewGraph(hypre.DefaultAvg)

	start := time.Now()
	n, err := g.AddQuantitativeBatch(l.Prefs.Quant)
	if err != nil {
		return res, err
	}
	res.QuantCount = n
	res.QuantTime = time.Since(start)

	start = time.Now()
	for _, q := range l.Prefs.Qual {
		if _, err := g.AddQualitative(q.UID, q.Left, q.Right, q.Intensity); err != nil {
			return res, err
		}
		res.QualCount++
	}
	res.QualTime = time.Since(start)
	res.Stats = g.GraphStats()
	return res, nil
}

// Render prints the Table 11 rows. The paper's shape: qualitative insertion
// is much slower per preference than the batched quantitative step.
func (r Table11Result) Render(w io.Writer) {
	fprintf(w, "Table 11: Insertion Time\n")
	fprintf(w, "%-26s %10s %12s\n", "Insertion Type", "Count", "Time")
	fprintf(w, "%-26s %10d %12s\n", "Quantitative Preferences", r.QuantCount, r.QuantTime.Round(time.Microsecond))
	fprintf(w, "%-26s %10d %12s\n", "Qualitative Preferences", r.QualCount, r.QualTime.Round(time.Microsecond))
	fprintf(w, "graph: %d nodes, %d edges (%d PREFERS, %d CYCLE, %d DISCARD)\n",
		r.Stats.Nodes, r.Stats.Edges, r.Stats.Prefers, r.Stats.Cycles, r.Stats.Discards)
}

// Table12Row is one DEFAULT_VALUE strategy outcome for a user.
type Table12Row struct {
	Strategy     hypre.DefaultStrategy
	SeedObserved float64 // the seed actually assigned to a fresh right node
	MinIntensity float64 // resulting profile spread under the strategy
	MaxIntensity float64
	ProfileSize  int
}

// Table12Result reproduces Table 12: the effect of each DEFAULT_VALUE
// selection strategy on one user's converted profile.
type Table12Result struct {
	UID  int64
	Rows []Table12Row
}

// RunTable12 rebuilds one user's subgraph under every Table 12 strategy.
func RunTable12(l *Lab, uid int64) (Table12Result, error) {
	res := Table12Result{UID: uid}
	qt, ql := l.Prefs.UserPrefs(uid)
	for _, s := range hypre.AllDefaultStrategies() {
		g := hypre.NewGraph(s)
		if _, err := g.Build(qt, ql); err != nil {
			return res, err
		}
		// Observe the seed on a fresh qualitative-only pair.
		r, err := g.AddQualitative(uid, `dblp.venue="__probeL"`, `dblp.venue="__probeR"`, 0.4)
		if err != nil {
			return res, err
		}
		seedInfo, _ := g.Node(r.RightID)
		row := Table12Row{Strategy: s, SeedObserved: seedInfo.Intensity}
		prof := g.Profile(uid)
		row.ProfileSize = len(prof)
		for i, p := range prof {
			if i == 0 || p.Intensity > row.MaxIntensity {
				row.MaxIntensity = p.Intensity
			}
			if i == 0 || p.Intensity < row.MinIntensity {
				row.MinIntensity = p.Intensity
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the Table 12 rows.
func (r Table12Result) Render(w io.Writer) {
	fprintf(w, "Table 12: DEFAULT_VALUE strategies (uid=%d)\n", r.UID)
	fprintf(w, "%-10s %10s %10s %10s %8s\n", "Strategy", "Seed", "MinInt", "MaxInt", "Profile")
	for _, row := range r.Rows {
		fprintf(w, "%-10s %10.4f %10.4f %10.4f %8d\n",
			row.Strategy, row.SeedObserved, row.MinIntensity, row.MaxIntensity, row.ProfileSize)
	}
}

// Fig13Point is one batch of the node-insertion scaling curve.
type Fig13Point struct {
	TotalNodes int
	BatchTime  time.Duration
}

// Fig13Result reproduces Fig. 13: node insertion time as the graph grows,
// inserted in fixed-size batches.
type Fig13Result struct {
	BatchSize int
	Points    []Fig13Point
}

// RunFig13 inserts batches×batchSize property nodes into a fresh graph
// store, timing each batch. The paper uses 1M batches up to 7B nodes; the
// default harness scales this down while preserving the curve's shape
// (mildly growing per-batch time).
func RunFig13(batches, batchSize int) Fig13Result {
	res := Fig13Result{BatchSize: batchSize}
	g := graphdb.New()
	g.CreateIndex("uidIndex", "uid")
	for b := 0; b < batches; b++ {
		specs := make([]graphdb.NodeSpec, batchSize)
		for i := range specs {
			specs[i] = graphdb.NodeSpec{
				Labels: []string{"uidIndex"},
				Props: graphdb.Props{
					"uid":       predicate.Int(int64((b*batchSize + i) % 100000)),
					"predicate": predicate.String("dblp_author.aid=1"),
					"intensity": predicate.Float(0.5),
				},
			}
		}
		start := time.Now()
		g.CreateNodes(specs)
		res.Points = append(res.Points, Fig13Point{
			TotalNodes: g.NodeCount(),
			BatchTime:  time.Since(start),
		})
	}
	return res
}

// Render prints the Fig. 13 series.
func (r Fig13Result) Render(w io.Writer) {
	fprintf(w, "Fig 13: Node insertion time (batch size %d)\n", r.BatchSize)
	fprintf(w, "%12s %14s\n", "TotalNodes", "BatchTime")
	for _, p := range r.Points {
		fprintf(w, "%12d %14s\n", p.TotalNodes, p.BatchTime.Round(time.Microsecond))
	}
}

// Fig17Result reproduces Fig. 17: the distribution of preference counts
// across users.
type Fig17Result struct {
	Bins      []workload.HistogramBin
	Users     int
	MaxCount  int
	TailRatio float64
}

// RunFig17 computes the histogram.
func RunFig17(l *Lab) Fig17Result {
	return Fig17Result{
		Bins:      l.Prefs.PrefDistribution(),
		Users:     len(l.Prefs.Users),
		MaxCount:  l.Prefs.MaxPrefCount(),
		TailRatio: l.Prefs.TailRatio(),
	}
}

// Render prints the Fig. 17 series.
func (r Fig17Result) Render(w io.Writer) {
	fprintf(w, "Fig 17: Distribution of number of preferences (%d users, max %d, tail %.2f)\n",
		r.Users, r.MaxCount, r.TailRatio)
	fprintf(w, "%10s %8s\n", "PrefCount", "Users")
	for _, b := range r.Bins {
		fprintf(w, "%10d %8d\n", b.PrefCount, b.Users)
	}
}
