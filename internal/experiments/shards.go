package experiments

import (
	"io"
	"runtime"
	"time"

	"hypre/internal/bitset"
	"hypre/internal/combine"
)

// ShardPoint is one worker count of the partition-sharding sweep.
type ShardPoint struct {
	Workers     int
	PairBuild   time.Duration // warm pair-count sweep (span × anchor tasks)
	Materialize time.Duration // cold bulk materialization (fresh evaluator)
	PEPS        time.Duration // span-sharded PEPS at K
}

// ShardsResult reports how the sharded evaluation layer scales with worker
// count on one user's profile, plus the equivalence verdict: every sharded
// output along the sweep is compared against the serial path.
type ShardsResult struct {
	UID     int64
	Prefs   int
	Pairs   int
	Spans   int // dense-id partitions (bitset.SpanCount of the dict)
	CPUs    int // runtime.NumCPU — speedup is bounded by this, record it
	K       int
	Reps    int
	Matched bool
	Points  []ShardPoint
}

// RunShards sweeps worker counts over the three sharded hot paths —
// BuildPairTable's (span × anchor) count sweep on a warm cache, cold
// MaterializeAll, and span-sharded PEPS — taking the best of reps runs per
// point, and verifies each point's pair table and top-k ranking are
// byte-identical to the serial algorithms.
func RunShards(l *Lab, uid int64, workerCounts []int, k, profileCap, reps int) (*ShardsResult, error) {
	if reps < 1 {
		reps = 1
	}
	prefs := l.ProfileFor(uid, profileCap)
	res := &ShardsResult{
		UID:     uid,
		Prefs:   len(prefs),
		CPUs:    runtime.NumCPU(),
		K:       k,
		Reps:    reps,
		Matched: true,
	}

	// Serial reference: the oracle every sweep point must reproduce.
	evS := l.Evaluator()
	evS.Workers = 1
	ptS, err := combine.BuildPairTable(prefs, evS)
	if err != nil {
		return nil, err
	}
	refTopK, err := combine.PEPS(prefs, ptS, evS, k, combine.Complete)
	if err != nil {
		return nil, err
	}
	res.Pairs = len(ptS.Pairs)
	res.Spans = bitset.SpanCount(evS.Dict().Size())

	for _, w := range workerCounts {
		pt := &ShardPoint{Workers: w}

		// Cold materialization: a fresh evaluator per rep so every profile
		// predicate pays its scan.
		for r := 0; r < reps; r++ {
			ev := l.Evaluator()
			ev.Workers = w
			start := time.Now()
			if err := ev.MaterializeAll(prefs); err != nil {
				return nil, err
			}
			if d := time.Since(start); r == 0 || d < pt.Materialize {
				pt.Materialize = d
			}
		}

		// Warm pair build: one materialized evaluator, reps timed sweeps.
		ev := l.Evaluator()
		ev.Workers = w
		if err := ev.MaterializeAll(prefs); err != nil {
			return nil, err
		}
		var table *combine.PairTable
		for r := 0; r < reps; r++ {
			start := time.Now()
			table, err = combine.BuildPairTable(prefs, ev)
			if err != nil {
				return nil, err
			}
			if d := time.Since(start); r == 0 || d < pt.PairBuild {
				pt.PairBuild = d
			}
		}

		var topk combine.TopKResult
		for r := 0; r < reps; r++ {
			start := time.Now()
			topk, err = combine.PEPSSharded(prefs, table, ev, k, combine.Complete)
			if err != nil {
				return nil, err
			}
			if d := time.Since(start); r == 0 || d < pt.PEPS {
				pt.PEPS = d
			}
		}

		if !samePairs(ptS, table) || !sameTopK(refTopK, topk) {
			res.Matched = false
		}
		res.Points = append(res.Points, *pt)
	}
	return res, nil
}

func samePairs(a, b *combine.PairTable) bool {
	if len(a.Pairs) != len(b.Pairs) {
		return false
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			return false
		}
	}
	return true
}

func sameTopK(a, b combine.TopKResult) bool {
	return a.AnchorsUsed == b.AnchorsUsed && sameRanking(a.Tuples, b.Tuples)
}

// Render prints the sweep with speedups relative to the 1-worker point.
func (r *ShardsResult) Render(w io.Writer) {
	fprintf(w, "Partition-sharded evaluation sweep (uid=%d): %d prefs, %d pairs, %d span(s), k=%d, %d cpus, best of %d, matched=%v\n",
		r.UID, r.Prefs, r.Pairs, r.Spans, r.K, r.CPUs, r.Reps, r.Matched)
	var base *ShardPoint
	for i := range r.Points {
		if r.Points[i].Workers == 1 {
			base = &r.Points[i]
			break
		}
	}
	speedup := func(b, d time.Duration) float64 {
		if base == nil || d <= 0 {
			return 0
		}
		return float64(b) / float64(d)
	}
	for _, p := range r.Points {
		if base != nil {
			fprintf(w, "  workers=%-3d pair build %10v (%.2fx)  materialize %10v (%.2fx)  peps %10v (%.2fx)\n",
				p.Workers, p.PairBuild, speedup(base.PairBuild, p.PairBuild),
				p.Materialize, speedup(base.Materialize, p.Materialize),
				p.PEPS, speedup(base.PEPS, p.PEPS))
		} else {
			fprintf(w, "  workers=%-3d pair build %10v  materialize %10v  peps %10v\n",
				p.Workers, p.PairBuild, p.Materialize, p.PEPS)
		}
	}
}
