package experiments

import (
	"io"
	"time"

	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/workload"
)

// UpdateStreamResult prices incremental maintenance against rematerialize-
// from-scratch under an online mutation stream: after every batch of
// mutations, the same top-k query is answered twice — once through the
// delta maintainer (Sync + PEPS over the repaired caches) and once by
// building a fresh evaluator and pair table over the mutated store — and
// the two rankings are required to be byte-identical.
type UpdateStreamResult struct {
	UID         int64
	ProfileSize int
	Batches     int
	OpsPerBatch int
	K           int

	// Maintenance cost per strategy, summed over batches: Sync (delta
	// repair of bitmaps + pair table) versus a from-scratch rebuild
	// (fresh-evaluator MaterializeAll + BuildPairTable) over the same
	// store states. This is the pair the acceptance criterion compares —
	// the top-k query that follows is byte-identical work on both sides.
	MaintIncremental   time.Duration
	MaintRematerialize time.Duration
	// Query cost per strategy (PEPS over the maintained vs fresh caches).
	QueryIncremental   time.Duration
	QueryRematerialize time.Duration
	// IncrementalTotal/RematerializeTotal are maintenance + query.
	IncrementalTotal   time.Duration
	RematerializeTotal time.Duration
	TouchedRows        int // distinct base rows re-evaluated, summed
	ChangedPreds       int // predicate bitmaps patched, summed
	FullRebuilds       int // batches that fell back to a full rebuild
	Matched            bool
	Inserts            int
	Deletes            int
	Updates            int
	LinkOps            int
}

// RunUpdateStream replays batches×opsPerBatch seeded mutations against a
// private clone of the lab's network (the shared store stays pristine) and
// measures both maintenance strategies per batch. uid's positive profile,
// capped at cap preferences, drives the top-k query.
func RunUpdateStream(l *Lab, uid int64, batches, opsPerBatch, k, cap int) (*UpdateStreamResult, error) {
	net, err := workload.Generate(l.Cfg)
	if err != nil {
		return nil, err
	}
	prefs := l.ProfileFor(uid, cap)
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	m, err := delta.NewMaintainer(ev, prefs)
	if err != nil {
		return nil, err
	}
	stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
	if err != nil {
		return nil, err
	}

	res := &UpdateStreamResult{
		UID: uid, ProfileSize: len(prefs),
		Batches: batches, OpsPerBatch: opsPerBatch, K: k, Matched: true,
	}
	for b := 0; b < batches; b++ {
		if _, err := stream.Apply(opsPerBatch); err != nil {
			return nil, err
		}

		start := time.Now()
		st, err := m.Sync()
		if err != nil {
			return nil, err
		}
		res.MaintIncremental += time.Since(start)
		start = time.Now()
		inc, err := m.TopK(k, combine.Complete)
		if err != nil {
			return nil, err
		}
		res.QueryIncremental += time.Since(start)
		res.TouchedRows += st.TouchedRows
		res.ChangedPreds += st.ChangedPreds
		if st.FullRebuild {
			res.FullRebuilds++
		}

		start = time.Now()
		ev2 := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
		pt2, err := combine.BuildPairTable(prefs, ev2)
		if err != nil {
			return nil, err
		}
		res.MaintRematerialize += time.Since(start)
		start = time.Now()
		remat, err := combine.PEPS(prefs, pt2, ev2, k, combine.Complete)
		if err != nil {
			return nil, err
		}
		res.QueryRematerialize += time.Since(start)

		if !sameRanking(inc.Tuples, remat.Tuples) {
			res.Matched = false
		}
	}
	res.Inserts, res.Deletes, res.Updates, res.LinkOps =
		stream.Inserts, stream.Deletes, stream.Updates, stream.LinkOps
	res.IncrementalTotal = res.MaintIncremental + res.QueryIncremental
	res.RematerializeTotal = res.MaintRematerialize + res.QueryRematerialize
	return res, nil
}

// sameRanking reports byte-identical rankings: same tuples, same assigned
// intensities, same order.
func sameRanking(a, b []combine.ScoredTuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].PID != b[i].PID || a[i].Intensity != b[i].Intensity {
			return false
		}
	}
	return true
}

// Render prints the comparison.
func (r *UpdateStreamResult) Render(w io.Writer) {
	status := "IDENTICAL"
	if !r.Matched {
		status = "MISMATCH"
	}
	fprintf(w, "Update stream (uid=%d, %d prefs, %d batches x %d ops, k=%d): maintenance incremental %v vs rematerialize %v (%.1fx faster); with query: %v vs %v; %d rows re-evaluated, %d bitmap patches, %d full rebuilds; ops %d ins/%d del/%d upd/%d link; rankings %s\n",
		r.UID, r.ProfileSize, r.Batches, r.OpsPerBatch, r.K,
		r.MaintIncremental, r.MaintRematerialize,
		float64(r.MaintRematerialize)/float64(max64(1, int64(r.MaintIncremental))),
		r.IncrementalTotal, r.RematerializeTotal,
		r.TouchedRows, r.ChangedPreds, r.FullRebuilds,
		r.Inserts, r.Deletes, r.Updates, r.LinkOps, status)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
