package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"hypre/internal/combine"
	"hypre/internal/topk"
)

// OneShotResult compares the two ways to answer a single cold top-k profile
// query: materialize-first (build every predicate bitmap, then TA over
// sorted lists) versus the streaming path (block iterators feeding TA with
// threshold early-exit, no bitmaps built). Both runs start from a fresh
// evaluator, so this is the latency a one-shot visitor actually pays.
type OneShotResult struct {
	UID   int64
	Prefs int
	K     int

	StreamBest       time.Duration
	StreamAlloc      uint64 // heap bytes allocated by the best-effort cold run
	MaterializeBest  time.Duration
	MaterializeAlloc uint64
	Reps             int

	// Latency percentiles over the cold reps (p99 degrades to the max when
	// reps are few) — the distribution the best-of figures summarize.
	StreamP50, StreamP99           time.Duration
	MaterializeP50, MaterializeP99 time.Duration

	Matched bool // both paths returned identical tuples in identical order
	Stats   topk.StreamStats
}

// coldRun times fn and reports the heap allocation delta around it. The
// explicit GC first puts every run behind the same heap state — without it,
// garbage left by whatever ran earlier in the process gets collected inside
// whichever timed region happens to trip the pacer, and the two paths'
// numbers stop being comparable.
func coldRun(fn func() error) (time.Duration, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := fn()
	d := time.Since(start)
	runtime.ReadMemStats(&m1)
	return d, m1.TotalAlloc - m0.TotalAlloc, err
}

// RunOneShotBench measures reps cold runs of each path for uid's profile
// (capped at cap preferences, 0 = full) and checks the answers against each
// other tuple-for-tuple.
func RunOneShotBench(l *Lab, uid int64, k, cap, reps int) (*OneShotResult, error) {
	if reps < 1 {
		reps = 1
	}
	prefs := l.ProfileFor(uid, cap)
	res := &OneShotResult{UID: uid, Prefs: len(prefs), K: k, Reps: reps}

	var stream, mat []combine.ScoredTuple
	streamLats := make([]time.Duration, 0, reps)
	matLats := make([]time.Duration, 0, reps)
	for r := 0; r < reps; r++ {
		ev := l.Evaluator()
		var st *topk.StreamStats
		d, alloc, err := coldRun(func() error {
			var err error
			stream, st, err = topk.EvaluateOneShot(ev, prefs, k)
			return err
		})
		if err != nil {
			return nil, err
		}
		if r == 0 || d < res.StreamBest {
			res.StreamBest, res.StreamAlloc = d, alloc
		}
		streamLats = append(streamLats, d)
		res.Stats = *st

		ev = l.Evaluator()
		d, alloc, err = coldRun(func() error {
			if err := ev.MaterializeAll(prefs); err != nil {
				return err
			}
			lists, err := topk.BuildLists(ev, prefs)
			if err != nil {
				return err
			}
			mat = lists.TA(k)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if r == 0 || d < res.MaterializeBest {
			res.MaterializeBest, res.MaterializeAlloc = d, alloc
		}
		matLats = append(matLats, d)
	}
	res.StreamP50, res.StreamP99 = pctile(streamLats, 0.50), pctile(streamLats, 0.99)
	res.MaterializeP50, res.MaterializeP99 = pctile(matLats, 0.50), pctile(matLats, 0.99)

	res.Matched = len(stream) == len(mat)
	if res.Matched {
		for i := range stream {
			if stream[i] != mat[i] {
				res.Matched = false
				break
			}
		}
	}
	if !res.Matched {
		return nil, fmt.Errorf("oneshot uid %d: streaming and materialized answers diverge", uid)
	}
	return res, nil
}

// Render prints the comparison row.
func (r *OneShotResult) Render(w io.Writer) {
	speedup := float64(r.MaterializeBest) / float64(r.StreamBest)
	fprintf(w, "One-shot top-%d (uid=%d, %d prefs): streaming best %v / %d B, materialized best %v / %d B (%.2fx), scanned %d/%d blocks, early-exit=%v, over %d cold runs\n",
		r.K, r.UID, r.Prefs, r.StreamBest, r.StreamAlloc,
		r.MaterializeBest, r.MaterializeAlloc, speedup,
		r.Stats.BlocksScanned, r.Stats.BlocksTotal, r.Stats.EarlyExit, r.Reps)
}
