package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hypre/internal/cache"
	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/hypre"
	"hypre/internal/metrics"
	"hypre/internal/obs"
	"hypre/internal/topk"
	"hypre/internal/workload"
)

// CacheServeConfig shapes the serving benchmark: a Zipf-skewed sequence of
// profile top-k queries replayed twice — straight against the evaluator
// (cache off) and through the cache.Server (cache on) — followed by a
// single-flight burst and a mutation churn phase under the delta maintainer.
type CacheServeConfig struct {
	// Queries is the replay sequence length per phase.
	Queries int
	K       int
	// Cap bounds each user's profile size (0 = full).
	Cap int
	// Workers is the concurrent client count in both phases.
	Workers int
	// Mix is the Zipf popularity draw over users.
	Mix workload.ProfileMixConfig
	// DedupWaiters is how many concurrent identical cold queries the
	// single-flight burst issues.
	DedupWaiters int
	// ChurnBatches × ChurnOps mutations run under the maintainer, with
	// serving traffic and equivalence checks between batches.
	ChurnBatches int
	ChurnOps     int
	// CacheBytes is the LRU budget (0 = cache default).
	CacheBytes int64
	// Reps repeats the whole measurement; the rep with the best cache-on
	// median is reported (the repo's best-of-reps discipline).
	Reps int
}

// DefaultCacheServeConfig is the BENCH-record shape.
func DefaultCacheServeConfig() CacheServeConfig {
	return CacheServeConfig{
		Queries:      400,
		K:            10,
		Cap:          24,
		Workers:      8,
		Mix:          workload.DefaultProfileMixConfig(),
		DedupWaiters: 16,
		ChurnBatches: 4,
		ChurnOps:     40,
		Reps:         3,
	}
}

// CacheServeResult is one measured serving comparison.
type CacheServeResult struct {
	Queries  int
	Distinct int // users actually appearing in the sequence
	Workers  int
	K        int
	ZipfS    float64
	TopShare float64 // query share of the 4 hottest users

	// Latency percentiles over the replayed sequence, per phase.
	OffP50, OffP99 time.Duration
	OnP50, OnP99   time.Duration
	// MedianSpeedup is OffP50 / OnP50 — the acceptance headline.
	MedianSpeedup float64

	// Single-flight burst: DedupRequests concurrent identical cold queries
	// collapsed to DedupLeaders evaluations.
	DedupRequests int
	DedupLeaders  int
	DedupFactor   float64

	ChurnBatches int
	ChurnOps     int

	// Snapshot is the cache-on phase's final counter state (includes the
	// burst and the churn traffic).
	Snapshot metrics.CacheSnapshot
	HitRate  float64

	// Matched: every sampled cached answer was byte-identical to a fresh
	// uncached evaluation of the same canonical profile.
	Matched bool
	Reps    int

	// ServedRate is the share of lookups the cache answered without an
	// evaluation (result hits + plan hits + shared waits).
	ServedRate float64
	// Routes is the per-route-class latency profile of the cache-on phase,
	// read from the server's obs histograms (hit / miss / shared / bypass).
	Routes []RouteStat
	// Trace verification: every query of a serial traced replay must have
	// its top-level stage spans sum to within 10% of the trace's own
	// end-to-end total. TraceCoverageMin is the worst ratio observed.
	TraceQueries     int
	TraceCoverageMin float64
	TraceCoverageOK  bool
	// SlowLogged is how many requests the slow log retained (threshold: the
	// cache-off p99, so it catches the cache-on tail).
	SlowLogged int
}

// RouteStat is one route class's serving-latency summary.
type RouteStat struct {
	Route string
	Count int64
	P50   time.Duration
	P99   time.Duration
}

// replay drives the sequence through serve with cfg.Workers concurrent
// clients and returns every per-query latency.
func replay(cfg CacheServeConfig, seq []int64, profiles map[int64][]hypre.ScoredPred,
	serve func(prefs []hypre.ScoredPred) error) ([]time.Duration, error) {
	lats := make([]time.Duration, len(seq))
	errs := make([]error, cfg.Workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seq) || errs[w] != nil {
					return
				}
				start := time.Now()
				errs[w] = serve(profiles[seq[i]])
				lats[i] = time.Since(start)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return lats, nil
}

// pctile is obs.Percentile — the single exact-quantile helper every
// experiment shares (same nearest-rank semantics the inline sort used to
// have; internal/obs pins the agreement in its tests).
func pctile(lats []time.Duration, p float64) time.Duration {
	return obs.Percentile(lats, p)
}

// RunCacheServe measures the serving tier end to end on a private clone of
// the lab's network. See CacheServeConfig for the phases.
func RunCacheServe(l *Lab, cfg CacheServeConfig) (*CacheServeResult, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	var best *CacheServeResult
	for rep := 0; rep < cfg.Reps; rep++ {
		r, err := runCacheServeOnce(l, cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || r.OnP50 < best.OnP50 {
			r.Reps = cfg.Reps
			best = r
		}
		if !r.Matched {
			best.Matched = false
		}
	}
	return best, nil
}

func runCacheServeOnce(l *Lab, cfg CacheServeConfig) (*CacheServeResult, error) {
	net, err := workload.Generate(l.Cfg)
	if err != nil {
		return nil, err
	}

	// Eligible users and their canonical profiles; the off phase evaluates
	// the canonical form too, so both phases rank the exact same input.
	users := make([]int64, 0, len(l.Prefs.Users))
	profiles := make(map[int64][]hypre.ScoredPred, len(l.Prefs.Users))
	for _, uid := range l.Prefs.Users {
		canon, _ := combine.CanonicalProfile(l.ProfileFor(uid, cfg.Cap))
		if len(canon) == 0 {
			continue
		}
		users = append(users, uid)
		profiles[uid] = canon
	}
	if len(users) == 0 {
		return nil, fmt.Errorf("cacheserve: no users with positive profiles")
	}
	mix := workload.ZipfProfileSequence(users, cfg.Queries, cfg.Mix)

	res := &CacheServeResult{
		Queries:  len(mix.Seq),
		Distinct: mix.DistinctQueried(),
		Workers:  cfg.Workers,
		K:        cfg.K,
		ZipfS:    cfg.Mix.S,
		TopShare: mix.TopShare(4),
		Matched:  true,
		Reps:     1,
	}
	if res.ZipfS <= 1 {
		res.ZipfS = workload.DefaultProfileMixConfig().S
	}

	// Phase 1 — cache off: the sequence straight into a shared evaluator
	// (its predicate bitmaps warm up, but every query still re-ranks).
	evOff := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	offLats, err := replay(cfg, mix.Seq, profiles, func(prefs []hypre.ScoredPred) error {
		_, _, err := topk.EvaluateOneShot(evOff, prefs, cfg.K)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.OffP50, res.OffP99 = pctile(offLats, 0.50), pctile(offLats, 0.99)

	// Phase 2 — cache on: same sequence through the server, with the obs
	// tier attached — per-route histograms feed the Routes summary, and the
	// slow log retains anything at or above the cache-off p99.
	evOn := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(res.OffP99, 64)
	srv := cache.NewServer(evOn, cache.Config{MaxBytes: cfg.CacheBytes, Registry: reg, SlowLog: slow})
	onLats, err := replay(cfg, mix.Seq, profiles, func(prefs []hypre.ScoredPred) error {
		_, _, err := srv.TopK(prefs, cfg.K)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.OnP50, res.OnP99 = pctile(onLats, 0.50), pctile(onLats, 0.99)
	res.MedianSpeedup = float64(res.OffP50) / float64(max64(1, int64(res.OnP50)))

	if err := verifySample(srv, net, profiles, mix.Ranked, cfg.K, res); err != nil {
		return nil, err
	}

	// Phase 3 — single-flight burst: DedupWaiters concurrent requests for
	// one cold fingerprint. Purge first so the profile is guaranteed cold.
	srv.Reset()
	before := srv.Counters().Snapshot()
	burstUID := mix.Ranked[0]
	var wg sync.WaitGroup
	burstErrs := make([]error, cfg.DedupWaiters)
	gate := make(chan struct{})
	for i := 0; i < cfg.DedupWaiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			_, _, burstErrs[i] = srv.TopK(profiles[burstUID], cfg.K)
		}(i)
	}
	close(gate)
	wg.Wait()
	for _, err := range burstErrs {
		if err != nil {
			return nil, err
		}
	}
	after := srv.Counters().Snapshot()
	res.DedupRequests = cfg.DedupWaiters
	res.DedupLeaders = int(after.Misses - before.Misses)
	res.DedupFactor = float64(res.DedupRequests) / float64(maxInt(1, res.DedupLeaders))

	// Phase 4 — churn: mutation batches under the delta maintainer, serving
	// and verifying between batches.
	m, err := delta.NewMaintainer(evOn, nil)
	if err != nil {
		return nil, err
	}
	m.AttachCache(srv)
	m.AttachObs(reg)
	stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
	if err != nil {
		return nil, err
	}
	res.ChurnBatches, res.ChurnOps = cfg.ChurnBatches, cfg.ChurnOps
	churnSeq := mix.Seq
	if len(churnSeq) > cfg.Queries/4 {
		churnSeq = churnSeq[:cfg.Queries/4]
	}
	for b := 0; b < cfg.ChurnBatches; b++ {
		if _, err := stream.Apply(cfg.ChurnOps); err != nil {
			return nil, err
		}
		if _, err := m.Sync(); err != nil {
			return nil, err
		}
		if _, err = replay(cfg, churnSeq, profiles, func(prefs []hypre.ScoredPred) error {
			_, _, err := srv.TopK(prefs, cfg.K)
			return err
		}); err != nil {
			return nil, err
		}
		if err := verifySample(srv, net, profiles, mix.Ranked, cfg.K, res); err != nil {
			return nil, err
		}
	}

	// Phase 5 — traced replay: a serial pass over the head of the sequence
	// with a fresh trace per query. Acceptance: every served query's
	// top-level stage spans must sum to within 10% of the trace's own
	// end-to-end total, across all route classes the pass hits.
	traceSeq := mix.Seq
	if len(traceSeq) > 32 {
		traceSeq = traceSeq[:32]
	}
	res.TraceCoverageMin = 1
	res.TraceCoverageOK = true
	for _, uid := range traceSeq {
		tr := obs.NewTrace()
		if _, _, err := srv.TopKTraced(profiles[uid], cfg.K, tr); err != nil {
			return nil, err
		}
		if tr.Total <= 0 {
			res.TraceCoverageOK = false
			continue
		}
		cover := float64(tr.TopLevelSum()) / float64(tr.Total)
		if cover < res.TraceCoverageMin {
			res.TraceCoverageMin = cover
		}
		if cover < 0.9 || cover > 1.1 {
			res.TraceCoverageOK = false
		}
	}
	res.TraceQueries = len(traceSeq)

	res.Snapshot = srv.Counters().Snapshot()
	res.HitRate = res.Snapshot.HitRate()
	res.ServedRate = res.Snapshot.ServedRate()
	for _, rc := range []string{"serve_hit", "serve_miss", "serve_shared", "serve_bypass"} {
		snap := reg.Histogram(rc).Snapshot()
		if snap.Count == 0 {
			continue
		}
		res.Routes = append(res.Routes, RouteStat{
			Route: rc,
			Count: snap.Count,
			P50:   snap.QuantileDuration(0.50),
			P99:   snap.QuantileDuration(0.99),
		})
	}
	res.SlowLogged = slow.Len()
	return res, nil
}

// verifySample re-asks the server for up to 8 ranked users and compares each
// answer against a fresh-evaluator uncached evaluation of the same canonical
// profile over the store's current state — the cached-equals-uncached
// acceptance check, run inside the experiment itself.
func verifySample(srv *cache.Server, net *workload.Network,
	profiles map[int64][]hypre.ScoredPred, ranked []int64, k int, res *CacheServeResult) error {
	n := len(ranked)
	if n > 8 {
		n = 8
	}
	for _, uid := range ranked[:n] {
		got, _, err := srv.TopK(profiles[uid], k)
		if err != nil {
			return err
		}
		fresh := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
		want, _, err := topk.EvaluateOneShot(fresh, profiles[uid], k)
		if err != nil {
			return err
		}
		if !sameRanking(got, want) {
			res.Matched = false
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render prints the serving row.
func (r *CacheServeResult) Render(w io.Writer) {
	status := "IDENTICAL"
	if !r.Matched {
		status = "MISMATCH"
	}
	trace := "OK"
	if !r.TraceCoverageOK {
		trace = "LOW"
	}
	fprintf(w, "Cache serve (zipf s=%.2f over %d users, %d queries x %d workers, k=%d, top-4 share %.0f%%): p50 %v -> %v (%.1fx), p99 %v -> %v; hit rate %.0f%% / served %.0f%% (%d hits/%d misses/%d shared, %d plan hits, %d evals); dedup %d reqs -> %d evals (%.1fx); churn %dx%d ops invalidated %d, bypassed %d; answers %s; best of %d reps\n",
		r.ZipfS, r.Distinct, r.Queries, r.Workers, r.K, 100*r.TopShare,
		r.OffP50, r.OnP50, r.MedianSpeedup, r.OffP99, r.OnP99,
		100*r.HitRate, 100*r.ServedRate, r.Snapshot.Hits, r.Snapshot.Misses, r.Snapshot.SharedWaits, r.Snapshot.PlanHits, r.Snapshot.Evaluations,
		r.DedupRequests, r.DedupLeaders, r.DedupFactor,
		r.ChurnBatches, r.ChurnOps, r.Snapshot.Invalidated, r.Snapshot.StaleBypasses,
		status, r.Reps)
	for _, rs := range r.Routes {
		fprintf(w, "  route %-13s %5d reqs  p50 %-10v p99 %v\n", rs.Route, rs.Count, rs.P50, rs.P99)
	}
	fprintf(w, "  traces: %d queries, span coverage min %.2f (%s); slow log retained %d >= off-p99\n",
		r.TraceQueries, r.TraceCoverageMin, trace, r.SlowLogged)
}
