package experiments

import (
	"fmt"
	"io"
	"time"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/metrics"
	"hypre/internal/topk"
)

// Fig37Result reproduces Figs. 37/38 and the §7.6.3 comparison: PEPS vs
// Fagin's TA, first on a quantitative-only graph (expected: identical
// rankings) and then on the full hybrid graph (expected: PEPS covers more
// tuples at higher intensities; the shared tuples keep TA's order).
type Fig37Result struct {
	UID int64
	K   int

	// Quantitative-only comparison.
	QTSimilarity float64
	QTOverlap    float64

	// Hybrid comparison.
	HybridSimilarity float64
	HybridOverlap    float64
	PEPSTuples       []combine.ScoredTuple
	TATuples         []combine.ScoredTuple
	// Above-threshold counts (tuples with intensity >= the user's top
	// original preference intensity) — the coverage advantage of Fig. 37.
	Threshold    float64
	PEPSAboveThr int
	TAAboveThr   int
}

// RunFig37PEPSvsTA runs both algorithms for one user.
func RunFig37PEPSvsTA(l *Lab, uid int64, k, profileCap int) (Fig37Result, error) {
	res := Fig37Result{UID: uid, K: k}

	// Phase 1: quantitative-only graph.
	qt, _ := l.Prefs.UserPrefs(uid)
	qg := hypre.NewGraph(hypre.DefaultAvg)
	if _, err := qg.Build(qt, nil); err != nil {
		return res, err
	}
	qProfile := qg.PositiveProfile(uid)
	if profileCap > 0 && len(qProfile) > profileCap {
		qProfile = qProfile[:profileCap]
	}
	ev := l.Evaluator()
	pt, err := combine.BuildPairTable(qProfile, ev)
	if err != nil {
		return res, err
	}
	pepsQT, err := combine.PEPS(qProfile, pt, ev, k, combine.Complete)
	if err != nil {
		return res, err
	}
	lists, err := topk.BuildLists(ev, qProfile)
	if err != nil {
		return res, err
	}
	taQT := lists.TA(k)
	res.QTSimilarity = metrics.Similarity(metrics.PIDs(pepsQT.Tuples), metrics.PIDs(taQT))
	res.QTOverlap = metrics.Overlap(metrics.PIDs(pepsQT.Tuples), metrics.PIDs(taQT))

	// Phase 2: hybrid graph (full HYPRE profile) vs TA (which can only see
	// quantitative preferences). The evaluator is shared with phase 1 so
	// predicate sets common to both profiles materialize once.
	hProfile := l.ProfileFor(uid, profileCap)
	pt2, err := combine.BuildPairTable(hProfile, ev)
	if err != nil {
		return res, err
	}
	pepsH, err := combine.PEPS(hProfile, pt2, ev, k, combine.Complete)
	if err != nil {
		return res, err
	}
	res.PEPSTuples = pepsH.Tuples
	res.TATuples = taQT
	res.HybridSimilarity = metrics.Similarity(metrics.PIDs(pepsH.Tuples), metrics.PIDs(taQT))
	res.HybridOverlap = metrics.Overlap(metrics.PIDs(pepsH.Tuples), metrics.PIDs(taQT))

	// Above-threshold coverage (the paper uses the user's max preference
	// intensity, e.g. 0.5 for uid=2).
	if len(qProfile) > 0 {
		res.Threshold = qProfile[0].Intensity
	}
	for _, t := range pepsH.Tuples {
		if t.Intensity >= res.Threshold {
			res.PEPSAboveThr++
		}
	}
	for _, t := range taQT {
		if t.Intensity >= res.Threshold {
			res.TAAboveThr++
		}
	}
	return res, nil
}

// Render prints the comparison summary and both intensity series.
func (r Fig37Result) Render(w io.Writer) {
	fprintf(w, "Fig 37/38: PEPS vs TA (uid=%d, k=%d)\n", r.UID, r.K)
	fprintf(w, "quantitative-only: similarity %.2f, overlap %.2f\n", r.QTSimilarity, r.QTOverlap)
	fprintf(w, "hybrid:            similarity %.2f, overlap %.2f\n", r.HybridSimilarity, r.HybridOverlap)
	fprintf(w, "tuples with intensity >= %.3f: PEPS %d vs TA %d\n",
		r.Threshold, r.PEPSAboveThr, r.TAAboveThr)
	fprintf(w, "%4s %12s %12s\n", "rank", "PEPS", "TA")
	n := len(r.PEPSTuples)
	if len(r.TATuples) > n {
		n = len(r.TATuples)
	}
	for i := 0; i < n; i++ {
		var p, t string
		if i < len(r.PEPSTuples) {
			p = formatFloat(r.PEPSTuples[i].Intensity)
		}
		if i < len(r.TATuples) {
			t = formatFloat(r.TATuples[i].Intensity)
		}
		fprintf(w, "%4d %12s %12s\n", i, p, t)
	}
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%.4f", v)
}

// Fig39Point is one K setting of the PEPS timing sweep.
type Fig39Point struct {
	K          int
	CompleteT  time.Duration
	ApproxT    time.Duration
	QuantOnlyT time.Duration
}

// Fig39Result reproduces Figs. 39/40: PEPS execution time as K grows, for
// the complete algorithm, the approximate algorithm, and the
// quantitative-only profile.
type Fig39Result struct {
	UID    int64
	Points []Fig39Point
	// PairBuildTime is the one-off pre-computation cost, reported
	// separately like the paper's setup phase.
	PairBuildTime time.Duration
}

// RunFig39PEPSTime sweeps K over the given values, averaging `reps` runs
// per point.
func RunFig39PEPSTime(l *Lab, uid int64, ks []int, reps, profileCap int) (Fig39Result, error) {
	res := Fig39Result{UID: uid}
	if reps <= 0 {
		reps = 1
	}
	hProfile := l.ProfileFor(uid, profileCap)
	qt, _ := l.Prefs.UserPrefs(uid)
	qg := hypre.NewGraph(hypre.DefaultAvg)
	if _, err := qg.Build(qt, nil); err != nil {
		return res, err
	}
	qProfile := qg.PositiveProfile(uid)
	if profileCap > 0 && len(qProfile) > profileCap {
		qProfile = qProfile[:profileCap]
	}

	// Pair build is timed best-of-reps on a fresh evaluator per rep — the
	// same cold setup cost (materialization + pair sweep) as before, with
	// the minimum filtering scheduler/GC spikes: the bench-regression gate
	// diffs this figure across PRs, so one noisy sample must not trip it.
	ev := l.Evaluator()
	var pt *combine.PairTable
	var err error
	for i := 0; i < reps; i++ {
		cold := l.Evaluator()
		start := time.Now()
		pt, err = combine.BuildPairTable(hProfile, cold)
		if err != nil {
			return res, err
		}
		if d := time.Since(start); i == 0 || d < res.PairBuildTime {
			res.PairBuildTime = d
		}
	}
	if err := ev.MaterializeAll(hProfile); err != nil {
		return res, err
	}
	ptQ, err := combine.BuildPairTable(qProfile, ev)
	if err != nil {
		return res, err
	}

	timeIt := func(f func() error) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < reps; i++ {
			s := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			total += time.Since(s)
		}
		return total / time.Duration(reps), nil
	}

	for _, k := range ks {
		var p Fig39Point
		p.K = k
		var err error
		p.CompleteT, err = timeIt(func() error {
			_, e := combine.PEPS(hProfile, pt, ev, k, combine.Complete)
			return e
		})
		if err != nil {
			return res, err
		}
		p.ApproxT, err = timeIt(func() error {
			_, e := combine.PEPS(hProfile, pt, ev, k, combine.Approximate)
			return e
		})
		if err != nil {
			return res, err
		}
		p.QuantOnlyT, err = timeIt(func() error {
			_, e := combine.PEPS(qProfile, ptQ, ev, k, combine.Complete)
			return e
		})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Render prints the Fig. 39/40 sweep.
func (r Fig39Result) Render(w io.Writer) {
	fprintf(w, "Fig 39/40: PEPS time vs K (uid=%d; pair table built in %s)\n",
		r.UID, r.PairBuildTime.Round(time.Microsecond))
	fprintf(w, "%6s %14s %14s %14s\n", "K", "complete", "approximate", "quant-only")
	for _, p := range r.Points {
		fprintf(w, "%6d %14s %14s %14s\n", p.K,
			p.CompleteT.Round(time.Microsecond),
			p.ApproxT.Round(time.Microsecond),
			p.QuantOnlyT.Round(time.Microsecond))
	}
}
