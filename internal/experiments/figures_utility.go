package experiments

import (
	"io"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/metrics"
)

// UtilityTupleCap is the §7.1.1 outlier guard: only the first page of
// results (25 tuples) counts toward utility.
const UtilityTupleCap = 25

// UtilitySeries is the utility trajectory for combinations of one size.
type UtilitySeries struct {
	NumPreds  int
	Utility   []float64 // by combination order
	Tuples    []int
	Intensity []float64
}

// Fig18Result reproduces Figs. 18/19 (utility by combination order for 2, 5
// and 10 predicates) and carries the underlying series of Figs. 20–25
// (tuple counts and intensity values for the same combinations).
type Fig18Result struct {
	UID    int64
	Series []UtilitySeries
	// AllRecords is the full Partially-Combine-All output the series are
	// sliced from.
	AllRecords combine.Records
}

// RunFig18Utility runs Partially-Combine-All over the user's positive
// profile (capped for tractability at profileCap preferences; 0 = no cap)
// and derives the 2/5/10-predicate series.
func RunFig18Utility(l *Lab, uid int64, profileCap int) (Fig18Result, error) {
	res := Fig18Result{UID: uid}
	prefs := l.ProfileFor(uid, profileCap)
	ev := l.Evaluator()
	recs, err := combine.PartiallyCombineAll(prefs, ev)
	if err != nil {
		return res, err
	}
	res.AllRecords = recs
	for _, n := range []int{2, 5, 10} {
		sub := recs.ByNumPreds(n)
		s := UtilitySeries{NumPreds: n}
		for _, r := range sub {
			s.Utility = append(s.Utility, metrics.RecordUtility(r, UtilityTupleCap))
			s.Tuples = append(s.Tuples, r.NumTuples)
			s.Intensity = append(s.Intensity, r.Intensity)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Render prints the Fig. 18/19 utility series.
func (r Fig18Result) Render(w io.Writer) {
	fprintf(w, "Fig 18/19: Utility value by combination order (uid=%d)\n", r.UID)
	for _, s := range r.Series {
		fprintf(w, "-- combinations of %d preferences (%d seen)\n", s.NumPreds, len(s.Utility))
		for i, u := range s.Utility {
			fprintf(w, "%4d %10.4f\n", i, u)
		}
	}
}

// RenderTuplesIntensity prints the Figs. 20–25 series (tuple counts and
// intensity values for combinations of 2/5/10 preferences).
func (r Fig18Result) RenderTuplesIntensity(w io.Writer) {
	fprintf(w, "Fig 20-25: #tuples and intensity by combination order (uid=%d)\n", r.UID)
	for _, s := range r.Series {
		fprintf(w, "-- combinations of %d preferences\n", s.NumPreds)
		fprintf(w, "%4s %8s %10s\n", "ord", "tuples", "intensity")
		for i := range s.Tuples {
			fprintf(w, "%4d %8d %10.4f\n", i, s.Tuples[i], s.Intensity[i])
		}
	}
}

// Fig26Result reproduces Figs. 26/27: the growth in usable quantitative
// preferences after qualitative conversion, with both intensity series.
type Fig26Result struct {
	UID            int64
	FromQuantTable int       // preferences originally in quantitative_pref
	FromGraph      int       // nodes with an intensity after conversion
	QuantSeries    []float64 // intensities of the original quantitative prefs (desc)
	GraphSeries    []float64 // intensities of all graph preferences (desc)
}

// RunFig26PrefGrowth counts the user's preferences before and after
// conversion.
func RunFig26PrefGrowth(l *Lab, uid int64) Fig26Result {
	res := Fig26Result{UID: uid}
	for _, n := range l.Graph.UserNodes(uid) {
		if !n.HasIntensity {
			continue
		}
		res.FromGraph++
		res.GraphSeries = append(res.GraphSeries, n.Intensity)
		if n.FromQuant {
			res.FromQuantTable++
			res.QuantSeries = append(res.QuantSeries, n.Intensity)
		}
	}
	return res
}

// GrowthFactor is FromGraph / FromQuantTable (Fig. 26's 36 -> 172 is 4.8x).
func (r Fig26Result) GrowthFactor() float64 {
	if r.FromQuantTable == 0 {
		return 0
	}
	return float64(r.FromGraph) / float64(r.FromQuantTable)
}

// Render prints the Fig. 26/27 comparison.
func (r Fig26Result) Render(w io.Writer) {
	fprintf(w, "Fig 26/27: Quantitative preference growth (uid=%d)\n", r.UID)
	fprintf(w, "from quantitative table: %d\n", r.FromQuantTable)
	fprintf(w, "from HYPRE graph:        %d  (%.2fx)\n", r.FromGraph, r.GrowthFactor())
}

// CoverageRow is one bar of Fig. 28.
type CoverageRow struct {
	Source string
	Tuples int
}

// Fig28Result reproduces Fig. 28: coverage over the dataset under four
// preference sources — original quantitative only (QT), original
// qualitative only (QL), both originals (QT+QL), and the full HYPRE graph.
type Fig28Result struct {
	UID  int64
	Rows []CoverageRow
}

// RunFig28Coverage computes the four coverage figures for one user.
// Original qualitative preferences contribute their left predicate when the
// strength is positive (left is strictly preferred) and both predicates at
// strength zero (equally preferred), as §7.1.2 prescribes.
func RunFig28Coverage(l *Lab, uid int64) (Fig28Result, error) {
	res := Fig28Result{UID: uid}
	ev := l.Evaluator()
	qt, ql := l.Prefs.UserPrefs(uid)

	quantPreds := scoredFromQuant(qt)
	var qualPreds []hypre.ScoredPred
	for _, q := range ql {
		left, err := hypre.NewScoredPred(q.Left, q.Intensity)
		if err != nil {
			continue
		}
		qualPreds = append(qualPreds, left)
		if q.Intensity == 0 {
			right, err := hypre.NewScoredPred(q.Right, 0)
			if err != nil {
				continue
			}
			qualPreds = append(qualPreds, right)
		}
	}
	graphPreds := l.Graph.Profile(uid)

	for _, src := range []struct {
		name  string
		preds []hypre.ScoredPred
	}{
		{"QT", quantPreds},
		{"QL", qualPreds},
		{"QT+QL", append(append([]hypre.ScoredPred{}, quantPreds...), qualPreds...)},
		{"HYPRE_Graph", graphPreds},
	} {
		n, err := metrics.Coverage(ev, src.preds)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, CoverageRow{Source: src.name, Tuples: n})
	}
	return res, nil
}

// Gain returns HYPRE coverage relative to a named baseline (e.g. "QT"),
// as a multiplier; the paper reports up to 3.36x (336%).
func (r Fig28Result) Gain(baseline string) float64 {
	var base, hypreN int
	for _, row := range r.Rows {
		if row.Source == baseline {
			base = row.Tuples
		}
		if row.Source == "HYPRE_Graph" {
			hypreN = row.Tuples
		}
	}
	if base == 0 {
		return 0
	}
	return float64(hypreN) / float64(base)
}

// Render prints the Fig. 28 bars.
func (r Fig28Result) Render(w io.Writer) {
	fprintf(w, "Fig 28: Coverage over the dataset (uid=%d)\n", r.UID)
	for _, row := range r.Rows {
		fprintf(w, "%-12s %8d tuples\n", row.Source, row.Tuples)
	}
	fprintf(w, "gain vs QT: %.2fx ; vs QT+QL: %.2fx\n", r.Gain("QT"), r.Gain("QT+QL"))
}
