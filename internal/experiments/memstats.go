package experiments

import (
	"io"

	"hypre/internal/predicate"
	"hypre/internal/workload"
)

// BitmapMemResult reports the compressed-vs-dense memory footprint of one
// user's materialized predicate bitmap cache (combine.MemStats) plus the
// store-side mask footprint — the bitmapmem experiment the adaptive
// container refactor is measured by. DenseBytes is what the previous dense
// word-vector representation would have paid for the same sets.
type BitmapMemResult struct {
	UID         int64
	Preds       int
	DictEntries int

	CompressedBytes int64
	DenseBytes      int64

	SparsePreds           int
	SparseCompressedBytes int64
	SparseDenseBytes      int64

	// Store-side masks (tombstones + join-existence selections), summed
	// over the workload's tables.
	StoreMaskBytes int64
}

// Ratio returns dense/compressed over the full cache (0 when empty).
func (r *BitmapMemResult) Ratio() float64 {
	if r.CompressedBytes == 0 {
		return 0
	}
	return float64(r.DenseBytes) / float64(r.CompressedBytes)
}

// SparseRatio returns dense/compressed over the sparse predicate subset
// (cardinality ≤ 1/16 of the dictionary domain) — the sets the refactor
// exists for.
func (r *BitmapMemResult) SparseRatio() float64 {
	if r.SparseCompressedBytes == 0 {
		return 0
	}
	return float64(r.SparseDenseBytes) / float64(r.SparseCompressedBytes)
}

// RunBitmapMem materializes uid's full positive profile on a fresh
// evaluator and rolls up the bitset.SizeBytes accounting.
func RunBitmapMem(l *Lab, uid int64) (*BitmapMemResult, error) {
	prefs := l.ProfileFor(uid, 0)
	ev := l.Evaluator()
	if err := ev.MaterializeAll(prefs); err != nil {
		return nil, err
	}
	st := ev.MemStats()
	res := &BitmapMemResult{
		UID:                   uid,
		Preds:                 st.Preds,
		DictEntries:           st.DictEntries,
		CompressedBytes:       st.CompressedBytes,
		DenseBytes:            st.DenseBytes,
		SparsePreds:           st.SparsePreds,
		SparseCompressedBytes: st.SparseCompressedBytes,
		SparseDenseBytes:      st.SparseDenseBytes,
	}
	base := workload.BaseQuery(predicate.True{})
	if t := l.Net.DB.Table(base.From); t != nil {
		ms := t.MemStats()
		res.StoreMaskBytes += ms.TombstoneBytes + ms.JoinMaskBytes
	}
	if base.Join != nil {
		if t := l.Net.DB.Table(base.Join.Table); t != nil {
			ms := t.MemStats()
			res.StoreMaskBytes += ms.TombstoneBytes + ms.JoinMaskBytes
		}
	}
	return res, nil
}

// Render prints the memory rows.
func (r *BitmapMemResult) Render(w io.Writer) {
	fprintf(w, "Bitmap memory (uid=%d): %d cached preds over %d dict entries\n",
		r.UID, r.Preds, r.DictEntries)
	fprintf(w, "  all preds:    %8d B compressed vs %8d B dense (%.1fx)\n",
		r.CompressedBytes, r.DenseBytes, r.Ratio())
	fprintf(w, "  sparse preds: %8d B compressed vs %8d B dense (%.1fx) over %d preds\n",
		r.SparseCompressedBytes, r.SparseDenseBytes, r.SparseRatio(), r.SparsePreds)
	fprintf(w, "  store masks:  %8d B (tombstones + join-existence)\n", r.StoreMaskBytes)
}
