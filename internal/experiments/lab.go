// Package experiments contains one runner per table and figure of the
// dissertation's evaluation (Chapters 6–7), plus the ablation studies
// DESIGN.md calls out. Each runner returns a structured result with a
// Render method that prints the same rows/series the paper reports; the
// cmd/benchrunner binary and the root bench_test.go drive them.
package experiments

import (
	"fmt"
	"io"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
	"hypre/internal/workload"
)

// Lab is the shared experimental setup: the synthetic citation network, the
// extracted preference workload, the HYPRE graph built from it, and the two
// exemplar users (the paper's uid=2 and uid=38437 stand-ins).
type Lab struct {
	Cfg    workload.Config
	Net    *workload.Network
	Prefs  *workload.Prefs
	Graph  *hypre.Graph
	Rich   int64 // stands in for uid=2 (~170 preferences)
	Modest int64 // stands in for uid=38437 (~50 preferences)
}

// NewLab generates the workload, extracts preferences, and builds the full
// HYPRE graph (Algorithm 1 over every user).
func NewLab(cfg workload.Config) (*Lab, error) { return NewLabWith(cfg) }

// NewLabWith is NewLab over a store built with the given relstore options —
// cmd/hypred uses it to serve writes through a group-commit store.
func NewLabWith(cfg workload.Config, opts ...relstore.DBOption) (*Lab, error) {
	net, err := workload.GenerateWith(cfg, opts...)
	if err != nil {
		return nil, err
	}
	prefs := workload.Extract(net, workload.DefaultExtractConfig())
	g := hypre.NewGraph(hypre.DefaultAvg)
	if _, err := g.Build(prefs.Quant, prefs.Qual); err != nil {
		return nil, err
	}
	rich, modest := prefs.PickUsers(170, 50)
	return &Lab{Cfg: cfg, Net: net, Prefs: prefs, Graph: g, Rich: rich, Modest: modest}, nil
}

// DefaultLab builds a lab over the default workload configuration.
func DefaultLab() (*Lab, error) { return NewLab(workload.DefaultConfig()) }

// Evaluator returns a fresh combination evaluator over the lab's store.
func (l *Lab) Evaluator() *combine.Evaluator {
	return combine.NewEvaluator(l.Net.DB, workload.BaseQuery, "dblp.pid")
}

// Users returns the two exemplar user ids in (rich, modest) order.
func (l *Lab) Users() []int64 { return []int64{l.Rich, l.Modest} }

// ProfileFor returns a user's positive preference profile, descending by
// intensity, capped at limit entries (0 = no cap). The Chapter 7
// experiments run on positive profiles.
func (l *Lab) ProfileFor(uid int64, limit int) []hypre.ScoredPred {
	p := l.Graph.PositiveProfile(uid)
	if limit > 0 && len(p) > limit {
		p = p[:limit]
	}
	return p
}

// fprintf swallows the error of fmt.Fprintf for render methods (writers in
// the harness are in-memory buffers or stdout).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// scoredFromQuant converts workload quantitative rows into ScoredPreds,
// skipping unparsable entries (there are none in the generated workload;
// the guard keeps the harness total).
func scoredFromQuant(rows []hypre.QuantPref) []hypre.ScoredPred {
	out := make([]hypre.ScoredPred, 0, len(rows))
	for _, r := range rows {
		sp, err := hypre.NewScoredPred(r.Pred, r.Intensity)
		if err != nil {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// baseQueryNoJoin is used by experiments that only filter the dblp table.
func baseQueryNoJoin(w predicate.Predicate) relstore.Query {
	return relstore.Query{From: "dblp", Where: w}
}
