package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/workload"
)

// TestFlightWaiterCancelLeaderCompletes: a waiter whose context ends while
// parked behind a leader unblocks immediately with ctx.Err(); the leader is
// unaffected, finishes its evaluation, publishes to the remaining waiter, and
// the in-flight map is cleaned up.
func TestFlightWaiterCancelLeaderCompletes(t *testing.T) {
	var g flightGroup
	key := entryKey{fp: fpOf(42), k: 5, kind: kindResult}
	want := []combine.ScoredTuple{{PID: 7, Intensity: 0.9}}

	gate := make(chan struct{})    // holds the leader's fn open
	started := make(chan struct{}) // closed once the leader is inside fn

	var wg sync.WaitGroup
	wg.Add(1)
	var leaderVal []combine.ScoredTuple
	var leaderIsLeader bool
	var leaderErr error
	go func() {
		defer wg.Done()
		leaderVal, leaderIsLeader, leaderErr = g.do(context.Background(), key, func() ([]combine.ScoredTuple, error) {
			close(started)
			<-gate
			return want, nil
		})
	}()
	<-started

	// A cancelable waiter joins the flight, then gives up.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, leader, err := g.do(ctx, key, func() ([]combine.ScoredTuple, error) {
			t.Error("waiter must not become leader while a flight is up")
			return nil, nil
		})
		if leader {
			t.Error("canceled waiter reported leader=true")
		}
		waiterDone <- err
	}()
	// A patient waiter joins too and must still get the answer.
	patientDone := make(chan []combine.ScoredTuple, 1)
	go func() {
		val, _, err := g.do(context.Background(), key, func() ([]combine.ScoredTuple, error) { return nil, nil })
		if err != nil {
			t.Errorf("patient waiter: %v", err)
		}
		patientDone <- val
	}()

	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled waiter did not unblock")
	}

	// The patient waiter is still parked: the leader hasn't finished.
	select {
	case <-patientDone:
		t.Fatal("patient waiter returned before the leader completed")
	case <-time.After(10 * time.Millisecond):
	}

	close(gate)
	wg.Wait()
	if leaderErr != nil || !leaderIsLeader {
		t.Fatalf("leader: leader=%v err=%v", leaderIsLeader, leaderErr)
	}
	if len(leaderVal) != 1 || leaderVal[0] != want[0] {
		t.Fatalf("leader value = %+v, want %+v", leaderVal, want)
	}
	select {
	case val := <-patientDone:
		if len(val) != 1 || val[0] != want[0] {
			t.Fatalf("patient waiter value = %+v, want %+v", val, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("patient waiter never received the leader's answer")
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.m) != 0 {
		t.Fatalf("flight map not cleaned up: %d entries", len(g.m))
	}
}

// TestFlightCanceledBeforeJoin: a context that is already dead still lets a
// fresh arrival lead (there is nothing to wait on — leading is not waiting).
func TestFlightCanceledBeforeJoin(t *testing.T) {
	var g flightGroup
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	val, leader, err := g.do(ctx, entryKey{fp: fpOf(1), k: 1, kind: kindResult},
		func() ([]combine.ScoredTuple, error) {
			return []combine.ScoredTuple{{PID: 1, Intensity: 1}}, nil
		})
	if err != nil || !leader || len(val) != 1 {
		t.Fatalf("dead-ctx leader: val=%v leader=%v err=%v", val, leader, err)
	}
}

// TestTopKContextCancelWhileShared: a request whose context ends while parked
// behind another session's in-flight evaluation of the same fingerprint
// returns promptly with outcome SharedMiss and ctx.Err(), records nothing,
// and the flight itself still publishes — the next request Hits.
func TestTopKContextCancelWhileShared(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Seed = 21
	cfg.NumPapers = 400
	cfg.NumAuthors = 100
	cfg.NumVenues = 8
	net, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	srv := NewServer(ev, Config{})

	p, err := hypre.NewScoredPred(fmt.Sprintf("dblp.venue=%q", net.Venues[0]), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	prefs := []hypre.ScoredPred{p}
	const k = 5
	_, fp := combine.CanonicalProfile(prefs)
	key := entryKey{fp: fp, k: int32(k), kind: kindResult}

	// Fabricate an in-flight leader for exactly the key TopKContext will
	// compute, so the request under test is deterministically a waiter.
	fake := &flightCall{done: make(chan struct{})}
	srv.flight.mu.Lock()
	if srv.flight.m == nil {
		srv.flight.m = make(map[entryKey]*flightCall)
	}
	srv.flight.m[key] = fake
	srv.flight.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, out, err := srv.TopKContext(ctx, prefs, k, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: err = %v, want context.Canceled", err)
	}
	if out != SharedMiss {
		t.Fatalf("canceled waiter outcome = %v, want SharedMiss", out)
	}
	if res != nil {
		t.Fatalf("canceled waiter returned tuples: %v", res)
	}

	// Tear the fake flight down and serve for real: the evaluation leads,
	// publishes, and a repeat is a Hit — cancellation left no residue.
	srv.flight.mu.Lock()
	delete(srv.flight.m, key)
	srv.flight.mu.Unlock()
	close(fake.done)

	first, out, err := srv.TopK(prefs, k)
	if err != nil || out != Miss {
		t.Fatalf("post-cancel evaluation: outcome %v err %v", out, err)
	}
	again, out, err := srv.TopK(prefs, k)
	if err != nil || out != Hit {
		t.Fatalf("repeat after publish: outcome %v err %v", out, err)
	}
	if len(first) != len(again) {
		t.Fatalf("hit answer diverged: %d vs %d tuples", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("hit answer diverged at %d: %+v vs %+v", i, first[i], again[i])
		}
	}
}
