package cache

import (
	"sync"

	"hypre/internal/combine"
)

// flightGroup collapses concurrent evaluations of the same (fingerprint, k)
// into one: the first arrival becomes the leader and runs the evaluation;
// every later arrival for the same key blocks on the leader's WaitGroup and
// shares the answer. N sessions asking the same cold profile at once cost
// one store scan, not N — the dedup half of the caching tier.
type flightGroup struct {
	mu sync.Mutex
	m  map[entryKey]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []combine.ScoredTuple
	err error
}

// do runs fn once per concurrent key: the leader (leader=true) executes fn,
// waiters receive the leader's value and error. The shared value is the
// cache-internal slice; callers copy before handing it out.
func (g *flightGroup) do(key entryKey, fn func() ([]combine.ScoredTuple, error)) (val []combine.ScoredTuple, leader bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[entryKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, false, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, true, c.err
}
