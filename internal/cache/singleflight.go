package cache

import (
	"context"
	"sync"

	"hypre/internal/combine"
)

// flightGroup collapses concurrent evaluations of the same (fingerprint, k)
// into one: the first arrival becomes the leader and runs the evaluation;
// every later arrival for the same key blocks on the leader's completion
// and shares the answer. N sessions asking the same cold profile at once
// cost one store scan, not N — the dedup half of the caching tier.
//
// Waiters are cancellable: a waiter whose context ends (an HTTP client
// disconnecting mid-wait) unblocks immediately with ctx.Err(). The leader is
// deliberately NOT cancellable — its work is shared, so it always completes
// and publishes even when every waiter (or its own caller's context) has
// given up; the next request for the fingerprint then hits the cache.
type flightGroup struct {
	mu sync.Mutex
	m  map[entryKey]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  []combine.ScoredTuple
	err  error
}

// do runs fn once per concurrent key: the leader (leader=true) executes fn,
// waiters receive the leader's value and error, or their own ctx.Err() if
// they stop waiting first. The shared value is the cache-internal slice;
// callers copy before handing it out.
func (g *flightGroup) do(ctx context.Context, key entryKey, fn func() ([]combine.ScoredTuple, error)) (val []combine.ScoredTuple, leader bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[entryKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, true, c.err
}
