// Package cache is the serving-path caching tier between callers and the
// evaluator: a sharded, byte-budgeted LRU holding compiled plans (built TA
// lists plus the one-shot router's decision) and top-k results, keyed by
// the canonical profile fingerprint of internal/combine. At serving scale
// repeated preference profiles are the common case, so a fingerprint hit
// turns a multi-millisecond scan into a map lookup; single-flight
// deduplication collapses concurrent identical cold queries to one
// evaluation; and invalidation after a mutation batch is delta-aware — it
// costs work proportional to the rows the batch touched, not to the cache
// size, and only entries whose predicate membership actually moved are
// dropped (the FO+MOD-under-updates discipline of the delta subsystem,
// extended over the cache).
package cache

import (
	"sync"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/metrics"
	"hypre/internal/obs"
	"hypre/internal/topk"
)

// entryKind separates the two value types sharing the cache: a top-k
// result for one (fingerprint, k), and a compiled plan for a fingerprint.
type entryKind uint8

const (
	kindResult entryKind = iota
	kindPlan
)

// entryKey addresses one cache entry. Plans ignore k.
type entryKey struct {
	fp   combine.Fingerprint
	k    int32
	kind entryKind
}

// entry is one cached value plus its LRU links and invalidation footprint.
// Entries are structurally immutable after insertion; readers may use
// tuples/lists without holding the shard lock (ScoredTuple slices are
// copied out to callers, and Lists carries its own RWMutex — maintenance
// syncs patch a plan entry's lists in place via topk.Lists.ApplyDelta while
// concurrent TA rankings read a consistent version).
type entry struct {
	key entryKey

	// tuples is the ranked answer of a result entry.
	tuples []combine.ScoredTuple
	// lists is a plan entry's built TA lists (nil for a streaming-decision
	// marker: the router chose the scan path, there is nothing to compile).
	lists *topk.Lists
	// canon is the canonical profile a lists-bearing plan entry was built
	// for — the repair input topk.DeltaGrades needs when a maintenance sync
	// patches the lists instead of evicting the plan.
	canon []hypre.ScoredPred
	// streamed records the router decision a plan entry memoizes.
	streamed bool

	// predKeys lists the normalized predicate texts the value depends on;
	// the invalidation sweep drops the entry when any of them moves.
	predKeys []string
	// size is the entry's byte accounting charge.
	size int64

	prev, next *entry // LRU list, most recent at head
}

// Cache is the sharded LRU. Shard selection hashes the fingerprint, so all
// entries of one profile (its plan and its per-k results) land in one
// shard and an invalidation sweep walks each shard once.
type Cache struct {
	shards   []shard
	perShard int64
	counters *metrics.CacheCounters
}

type shard struct {
	mu         sync.Mutex
	entries    map[entryKey]*entry
	head, tail *entry
	bytes      int64
}

// Config sizes the cache. Zero values take defaults.
type Config struct {
	// MaxBytes is the eviction budget across all shards (default 64 MiB).
	MaxBytes int64
	// Shards is the shard count, rounded up to a power of two (default 16).
	Shards int
	// Counters receives hit/miss/eviction traffic (default: a private set).
	Counters *metrics.CacheCounters

	// Registry, when set, receives per-route-class latency histograms
	// (serve_hit / serve_miss / serve_shared / serve_bypass) and the
	// counter set as a group. Nil disables latency measurement entirely —
	// the serve path then never reads the clock.
	Registry *obs.Registry
	// SlowLog, when set, retains queries at or above its threshold; traced
	// queries log their full trace, untraced ones a summary line.
	SlowLog *obs.SlowLog
}

// NewCache builds an empty cache.
func NewCache(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.Counters == nil {
		cfg.Counters = &metrics.CacheCounters{}
	}
	c := &Cache{
		shards:   make([]shard, n),
		perShard: cfg.MaxBytes / int64(n),
		counters: cfg.Counters,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[entryKey]*entry)
	}
	return c
}

// Counters exposes the counter set the cache increments.
func (c *Cache) Counters() *metrics.CacheCounters { return c.counters }

func (c *Cache) shardOf(fp combine.Fingerprint) *shard {
	return &c.shards[int(fp[0])&(len(c.shards)-1)]
}

// get returns the entry and refreshes its recency.
func (c *Cache) get(key entryKey) (*entry, bool) {
	sh := c.shardOf(key.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	sh.unlink(e)
	sh.pushFront(e)
	return e, true
}

// put inserts (or replaces) an entry and evicts from the cold end until the
// shard is back under budget. An entry larger than a whole shard's budget
// is not cached at all — it would only evict everything else and then
// itself.
func (c *Cache) put(e *entry) {
	if e.size > c.perShard {
		return
	}
	sh := c.shardOf(e.key.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.entries[e.key]; ok {
		sh.drop(old)
	}
	sh.entries[e.key] = e
	sh.pushFront(e)
	sh.bytes += e.size
	for sh.bytes > c.perShard && sh.tail != nil {
		victim := sh.tail
		sh.drop(victim)
		c.counters.Evictions.Add(1)
	}
}

// removeWhere drops every entry the predicate selects, returning how many.
func (c *Cache) removeWhere(match func(*entry) bool) int {
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if match(e) {
				sh.drop(e)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// planLists snapshots the lists-bearing plan entries, for repair work that
// must run outside the shard locks (evaluator reads nest store locks, which
// never mix with shard locks).
func (c *Cache) planLists() []*entry {
	var out []*entry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if e.key.kind == kindPlan && e.lists != nil {
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// recharge re-accounts an entry whose resident size changed in place (a
// repaired plan's lists grew or shrank), evicting from the cold end if the
// shard went over budget. A no-op when the entry was concurrently dropped.
func (c *Cache) recharge(e *entry, size int64) {
	sh := c.shardOf(e.key.fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.entries[e.key] != e {
		return
	}
	sh.bytes += size - e.size
	e.size = size
	for sh.bytes > c.perShard && sh.tail != nil {
		sh.drop(sh.tail)
		c.counters.Evictions.Add(1)
	}
}

// purge empties the cache (full invalidation).
func (c *Cache) purge() int {
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		dropped += len(sh.entries)
		sh.entries = make(map[entryKey]*entry)
		sh.head, sh.tail, sh.bytes = nil, nil, 0
		sh.mu.Unlock()
	}
	return dropped
}

// Stats reports the cache's resident entry count and byte charge.
func (c *Cache) Stats() (entries int, bytes int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		entries += len(sh.entries)
		bytes += sh.bytes
		sh.mu.Unlock()
	}
	return entries, bytes
}

// drop removes an entry from the map, list, and byte charge. Caller holds
// the shard lock.
func (sh *shard) drop(e *entry) {
	delete(sh.entries, e.key)
	sh.unlink(e)
	sh.bytes -= e.size
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if sh.head == e {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) pushFront(e *entry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// tupleSliceBytes is the byte charge of a ranked answer.
func tupleSliceBytes(ts []combine.ScoredTuple) int64 {
	return 48 + int64(len(ts))*16
}

// predKeyBytes charges the dependency list.
func predKeyBytes(keys []string) int64 {
	var n int64
	for _, k := range keys {
		n += int64(len(k)) + 16
	}
	return n
}

// cloneTuples copies a cached answer out to a caller, so callers may sort
// or truncate their slice without corrupting the shared entry.
func cloneTuples(ts []combine.ScoredTuple) []combine.ScoredTuple {
	out := make([]combine.ScoredTuple, len(ts))
	copy(out, ts)
	return out
}
