package cache

import (
	"context"
	"errors"
	"sync"
	"time"

	"hypre/internal/bitset"
	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/metrics"
	"hypre/internal/obs"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
	"hypre/internal/topk"
)

// Server is the concurrency-safe caching front to one evaluator: TopK
// canonicalizes the profile, serves repeats from the result cache,
// deduplicates concurrent identical cold queries through single flight, and
// stays byte-identical to uncached evaluation under mutations via the
// delta-aware invalidation the delta.Maintainer drives (AttachCache).
//
// Freshness discipline: the server records the store's epoch stamp each
// time ApplyDelta/InvalidateAll synchronizes it. A request arriving while
// the stamp has advanced past that point (mutations committed, maintainer
// not yet synced) bypasses the cache entirely — it evaluates uncached and
// stores nothing — so a cached answer always describes a synced snapshot.
type Server struct {
	ev       *combine.Evaluator
	db       *relstore.DB
	c        *Cache
	counters *metrics.CacheCounters
	tables   []string

	flight flightGroup

	// Observability: obsOn gates every clock read on the serve path (false
	// when neither a registry nor a slow log is attached — the instrumented
	// path is then branch-only). routeHists indexes by Outcome.
	obsOn      bool
	reg        *obs.Registry
	slow       *obs.SlowLog
	routeHists [4]*obs.Histogram

	// mu guards the predicate-footprint registry and the freshness state.
	// Lock order: mu before store locks (footprint scans, ApplyDelta
	// re-matches) and before shard locks (the invalidation sweep); shard
	// locks never nest inside store locks or vice versa. Lists' internal
	// lock (plan repair) is innermost of all.
	mu         sync.Mutex
	preds      map[string]*predFoot
	validStamp uint64
	gen        uint64
	// remapDirty carries predicates whose footprints lost rows in an
	// ApplyRemap into the following ApplyDelta's dirty set.
	remapDirty map[string]bool
}

// predFoot is one registered predicate's invalidation state: its full query
// shape and the base rows it matched when last observed. rows == nil means
// the footprint could not be computed (unvectorizable shape); such a
// predicate is conservatively treated as moved by every mutation batch.
type predFoot struct {
	q    relstore.Query
	rows *bitset.Set
}

// Outcome reports how one TopK request was served.
type Outcome uint8

const (
	// Hit: answered from the result cache.
	Hit Outcome = iota
	// Miss: this request ran the evaluation (single-flight leader).
	Miss
	// SharedMiss: waited on another session's in-flight evaluation.
	SharedMiss
	// StaleBypass: store epochs moved past the last sync; evaluated
	// uncached, nothing stored.
	StaleBypass
)

// String names the outcome for logs and bench rows.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case SharedMiss:
		return "shared"
	default:
		return "bypass"
	}
}

// NewServer wraps an evaluator in the caching tier. The evaluator's base
// query names the tables whose epochs gate freshness.
func NewServer(ev *combine.Evaluator, cfg Config) *Server {
	if cfg.Counters == nil {
		cfg.Counters = &metrics.CacheCounters{}
	}
	base := ev.BaseQuery(predicate.True{})
	tables := []string{base.From}
	if base.Join != nil {
		tables = append(tables, base.Join.Table)
	}
	db := ev.DB()
	s := &Server{
		ev:         ev,
		db:         db,
		c:          NewCache(cfg),
		counters:   cfg.Counters,
		tables:     tables,
		preds:      make(map[string]*predFoot),
		validStamp: db.EpochStamp(tables...),
		reg:        cfg.Registry,
		slow:       cfg.SlowLog,
		obsOn:      cfg.Registry != nil || cfg.SlowLog != nil,
	}
	if s.reg != nil {
		for out, name := range map[Outcome]string{
			Hit: "serve_hit", Miss: "serve_miss",
			SharedMiss: "serve_shared", StaleBypass: "serve_bypass",
		} {
			s.routeHists[out] = s.reg.Histogram(name)
		}
		counters := s.counters
		s.reg.RegisterGroup("cache", func() map[string]int64 {
			snap := counters.Snapshot()
			return map[string]int64{
				"hits":            snap.Hits,
				"misses":          snap.Misses,
				"plan_hits":       snap.PlanHits,
				"evaluations":     snap.Evaluations,
				"shared_waits":    snap.SharedWaits,
				"evictions":       snap.Evictions,
				"invalidated":     snap.Invalidated,
				"plan_repairs":    snap.PlanRepairs,
				"stale_bypasses":  snap.StaleBypasses,
				"footprint_scans": snap.FootprintScans,
			}
		})
	}
	return s
}

// Cache exposes the underlying store for stats and tests.
func (s *Server) Cache() *Cache { return s.c }

// Counters exposes the shared counter set.
func (s *Server) Counters() *metrics.CacheCounters { return s.counters }

// TopK answers a top-k profile query through the cache. The answer is
// byte-identical to topk.EvaluateOneShot over the canonical form of prefs
// (combine.CanonicalProfile) against the last-synced store snapshot; the
// returned slice is the caller's to keep.
func (s *Server) TopK(prefs []hypre.ScoredPred, k int) ([]combine.ScoredTuple, Outcome, error) {
	return s.TopKContext(context.Background(), prefs, k, nil)
}

// TopKTraced is TopK under per-query observability: the route decision,
// contiguous stage spans, and the chosen path's engine counters land in tr
// (nil = disabled, TopK calls it that way). Latency histograms and the slow
// log observe every call when attached, traced or not; with neither
// attached and tr nil the serve path never reads the clock.
func (s *Server) TopKTraced(prefs []hypre.ScoredPred, k int, tr *obs.Trace) ([]combine.ScoredTuple, Outcome, error) {
	return s.TopKContext(context.Background(), prefs, k, tr)
}

// TopKContext is TopKTraced with request-scoped cancellation: a ctx that
// ends while this request is parked behind another session's in-flight
// evaluation of the same fingerprint unblocks immediately with ctx.Err()
// (outcome SharedMiss, nothing recorded as served). Cancellation stops
// WAITING only — a single-flight leader's evaluation is shared work and
// always runs to completion and publishes, so the canceled waiter's peers
// (and the next request) still get their answer. The HTTP serving tier
// passes each request's context here.
func (s *Server) TopKContext(ctx context.Context, prefs []hypre.ScoredPred, k int, tr *obs.Trace) ([]combine.ScoredTuple, Outcome, error) {
	// Span discipline: top-level spans tile the request — each stage hands
	// off to the next through Transition (one shared clock reading, zero
	// gap), and the final stage stays open for Finish to close at the same
	// instant it stamps Total. TopLevelSum therefore tracks Total to within
	// a few clock reads even on microsecond hit paths.
	sp := tr.StartSpan(obs.StageCanonicalize)
	var started time.Time
	if s.obsOn {
		started = time.Now()
	}
	tr.SetK(k)
	canon, fp := combine.CanonicalProfile(prefs)
	if tr != nil {
		// Formatting the fingerprint is tracing's own cost; charge it to the
		// canonicalize span so the spans still tile the request.
		tr.SetQuery(fp.String())
	}

	sp = tr.Transition(sp, obs.StageLookup)
	stamp := s.db.EpochStamp(s.tables...)
	s.mu.Lock()
	valid := stamp == s.validStamp
	s.mu.Unlock()
	if !valid {
		// Unsynced mutations exist: a cached entry could not be told apart
		// from a stale one, so serve this request uncached and let the next
		// ApplyDelta re-open the cache.
		s.counters.StaleBypasses.Add(1)
		tr.Transition(sp, obs.StageEvaluate)
		out, _, err := topk.EvaluateOneShotTraced(s.ev, canon, k, tr)
		s.observe(tr, StaleBypass, started, fp, k, err)
		return out, StaleBypass, err
	}

	rk := entryKey{fp: fp, k: int32(k), kind: kindResult}
	if e, ok := s.c.get(rk); ok {
		s.counters.Hits.Add(1)
		tr.Transition(sp, obs.StageRank)
		out := cloneTuples(e.tuples)
		s.observe(tr, Hit, started, fp, k, nil)
		return out, Hit, nil
	}

	// The leader's closure runs on the first arriving goroutine; a traced
	// waiter sees only the flight span (the leader's trace, if any, is the
	// leader's own).
	fsp := tr.Transition(sp, obs.StageFlight)
	val, leader, err := s.flight.do(ctx, rk, func() ([]combine.ScoredTuple, error) {
		return s.evaluate(canon, fp, k, stamp, tr)
	})
	if err != nil {
		// A waiter whose own context ended is a canceled wait, not an
		// evaluation failure; report it under the shared route so the miss
		// histogram keeps describing real evaluation latency.
		if !leader && ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			s.observe(tr, SharedMiss, started, fp, k, err)
			return nil, SharedMiss, err
		}
		s.observe(tr, Miss, started, fp, k, err)
		return nil, Miss, err
	}
	if leader {
		s.counters.Misses.Add(1)
		s.observe(tr, Miss, started, fp, k, nil)
		return val, Miss, nil
	}
	s.counters.SharedWaits.Add(1)
	tr.Transition(fsp, obs.StageRank)
	out := cloneTuples(val)
	s.observe(tr, SharedMiss, started, fp, k, nil)
	return out, SharedMiss, nil
}

// observe finishes the trace and records the request into the per-route
// histogram and the slow log. The duration is measured only when obsOn (a
// registry or slow log is attached); the fingerprint is formatted only on
// the slow path of an untraced request.
func (s *Server) observe(tr *obs.Trace, out Outcome, started time.Time, fp combine.Fingerprint, k int, err error) {
	if tr != nil {
		tr.SetRoute(out.String())
		tr.SetErr(err)
		tr.Finish()
	}
	if !s.obsOn {
		return
	}
	d := time.Since(started)
	if h := s.routeHists[out]; h != nil {
		h.RecordDuration(d)
	}
	if s.slow != nil && d >= s.slow.Threshold() {
		query := fp.String()
		s.slow.Observe(out.String(), query, k, d, tr)
	}
}

// evaluate is the single-flight leader body: route and run the evaluation
// (reusing a cached plan when one exists), register predicate footprints,
// and publish the plan and result entries — unless the store moved while we
// were working, in which case the answer is returned but nothing is cached.
func (s *Server) evaluate(canon []hypre.ScoredPred, fp combine.Fingerprint, k int, stamp uint64, tr *obs.Trace) ([]combine.ScoredTuple, error) {
	s.mu.Lock()
	gen := s.gen
	s.mu.Unlock()

	res, lists, streamed, err := s.route(canon, fp, k, tr)
	if err != nil {
		return nil, err
	}
	keys := predKeysOf(canon)
	fsp := tr.StartSpan(obs.StageFootprint)
	err = s.registerPreds(canon)
	tr.EndSpan(fsp)
	if err != nil {
		return nil, err
	}

	// Publish gate: entries must describe the stamp-state the evaluation
	// and the footprint scans both observed. Any commit in between bumps
	// the epoch stamp; any maintainer sync bumps gen. Either one rejects
	// the publish (the caller still gets the answer).
	psp := tr.StartSpan(obs.StagePublish)
	defer tr.EndSpan(psp)
	s.mu.Lock()
	publish := gen == s.gen && s.db.EpochStamp(s.tables...) == stamp
	s.mu.Unlock()
	if publish {
		pe := &entry{key: entryKey{fp: fp, kind: kindPlan}, lists: lists, streamed: streamed, predKeys: keys}
		pe.size = 64 + predKeyBytes(keys)
		if lists != nil {
			// The canonical profile rides along as the repair input: a
			// maintenance sync re-grades the touched pids through
			// topk.DeltaGrades and patches these lists in place.
			pe.canon = canon
			pe.size += lists.SizeBytes()
		}
		s.c.put(pe)
		re := &entry{key: entryKey{fp: fp, k: int32(k), kind: kindResult}, tuples: cloneTuples(res), predKeys: keys}
		re.size = tupleSliceBytes(re.tuples) + predKeyBytes(keys)
		s.c.put(re)
	}
	return res, nil
}

// route mirrors topk.EvaluateOneShot's cost-based router, with one addition
// in front: a cached compiled plan for this fingerprint answers a new k
// without touching the store at all (the different-k warm path), and a
// cached streaming decision skips the router probe.
//
// Counter discipline: every path that actually evaluates against the store
// counts one Evaluations tick — exactly one per call, even when the
// streamed-decision path falls through to the materialized one — while the
// plan-hit path (no store touched) counts PlanHits instead. Together with
// the leader's Misses tick this pins Misses == PlanHits + Evaluations.
func (s *Server) route(canon []hypre.ScoredPred, fp combine.Fingerprint, k int, tr *obs.Trace) (res []combine.ScoredTuple, lists *topk.Lists, streamed bool, err error) {
	evaluated := false
	countEval := func() {
		if !evaluated {
			evaluated = true
			s.counters.Evaluations.Add(1)
		}
	}
	if e, ok := s.c.get(entryKey{fp: fp, kind: kindPlan}); ok {
		if e.lists != nil {
			s.counters.PlanHits.Add(1)
			tr.SetExec("plan_hit")
			sp := tr.StartSpan(obs.StagePlanTA)
			out := e.lists.TATraced(k, tr)
			tr.EndSpan(sp)
			return out, e.lists, false, nil
		}
		if e.streamed {
			countEval()
			out, _, err := topk.EvaluateStreamingTraced(s.ev, canon, k, tr)
			if err == nil {
				tr.SetExec("streaming")
				return out, nil, true, nil
			}
			if !errors.Is(err, relstore.ErrStreamUnsupported) {
				return nil, nil, false, err
			}
			// The shape stopped streaming (schema drift): fall through to
			// the materialized path below.
		}
	}
	if len(canon) > 0 && s.ev.CachedCount(canon) == len(canon) {
		countEval()
		tr.SetExec("ta_cached")
		sp := tr.StartSpan(obs.StageBuildLists)
		lists, err = topk.BuildLists(s.ev, canon)
		tr.EndSpan(sp)
		if err != nil {
			return nil, nil, false, err
		}
		sp = tr.StartSpan(obs.StageTA)
		out := lists.TATraced(k, tr)
		tr.EndSpan(sp)
		return out, lists, false, nil
	}
	countEval()
	out, st, err := topk.EvaluateStreamingTraced(s.ev, canon, k, tr)
	if err == nil {
		tr.SetExec("streaming")
		return out, nil, st.Streamed, nil
	}
	if !errors.Is(err, relstore.ErrStreamUnsupported) {
		return nil, nil, false, err
	}
	tr.SetExec("materialized_fallback")
	sp := tr.StartSpan(obs.StageBuildLists)
	lists, err = topk.BuildLists(s.ev, canon)
	tr.EndSpan(sp)
	if err != nil {
		return nil, nil, false, err
	}
	sp = tr.StartSpan(obs.StageTA)
	out = lists.TATraced(k, tr)
	tr.EndSpan(sp)
	return out, lists, false, nil
}

// predKeysOf lists the canonical profile's dependency keys.
func predKeysOf(canon []hypre.ScoredPred) []string {
	keys := make([]string, len(canon))
	for i, p := range canon {
		keys[i] = p.Pred
	}
	return keys
}

// registerPreds ensures every predicate of the profile has a footprint in
// the registry: the base rows it currently matches, computed by one
// vectorized scan per predicate, once per cache lifetime. The scans run
// outside the registry lock; a racing registration of the same predicate
// wastes one scan and keeps the first entry.
func (s *Server) registerPreds(canon []hypre.ScoredPred) error {
	var missing []hypre.ScoredPred
	s.mu.Lock()
	for _, p := range canon {
		if _, ok := s.preds[p.Pred]; !ok {
			missing = append(missing, p)
		}
	}
	s.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	scanned := make([]*predFoot, len(missing))
	for i, p := range missing {
		q := s.ev.BaseQuery(p.P)
		rows, err := s.footprint(q)
		if err != nil {
			return err
		}
		scanned[i] = &predFoot{q: q, rows: rows}
		s.counters.FootprintScans.Add(1)
	}
	s.mu.Lock()
	for i, p := range missing {
		if _, ok := s.preds[p.Pred]; !ok {
			s.preds[p.Pred] = scanned[i]
		}
	}
	s.mu.Unlock()
	return nil
}

// footprint computes the live base rows matching one predicate's query.
// nil (with nil error) means the shape defeats both scan paths; the
// predicate then invalidates conservatively.
func (s *Server) footprint(q relstore.Query) (*bitset.Set, error) {
	sel, ok, err := s.db.ScanAttrRowSet(q, s.ev.KeyAttr(), -1, nil)
	if err != nil {
		return nil, err
	}
	if ok {
		return sel, nil
	}
	rows := bitset.New()
	if err := s.db.ScanAttrRows(q, s.ev.KeyAttr(), func(lid int, _ int64) {
		rows.Add(lid)
	}); err != nil {
		// The key attribute does not bind to the base table for this
		// query shape; no row footprint exists.
		return nil, nil //nolint:nilerr // conservative-invalidation fallback
	}
	return rows, nil
}

// ApplyDelta is the delta.CacheSyncer hook: after a mutation batch, the
// maintainer hands over the touched base-row mask, the pids of
// compaction-dropped rows, and the epochs it synced to. Each registered
// predicate re-matches only the touched rows (relstore.MatchLeftRowSet —
// kernels restricted to the touched rows' blocks); predicates whose
// membership over those rows did not move keep their entries. For the rest,
// result entries are swept, but a compiled plan's TA lists are repaired in
// place when possible: the touched pids are re-graded against the
// evaluator's (already refreshed) bitmaps and spliced into the lists'
// overlay (topk.Lists.ApplyDelta), so the plan keeps answering new-k
// queries across a sustained stream instead of being rebuilt every Sync.
// Cost scales with touched rows × registered predicates, never with the
// number of cached entries surviving.
func (s *Server) ApplyDelta(touched *bitset.Set, droppedPids []int64, leftEpoch, rightEpoch uint64) {
	stamp := leftEpoch + rightEpoch
	s.mu.Lock()
	defer s.mu.Unlock()
	if (touched == nil || touched.IsEmpty()) && len(droppedPids) == 0 && len(s.remapDirty) == 0 {
		s.validStamp = stamp
		return
	}
	if touched == nil {
		touched = bitset.New()
	}
	// Any in-flight evaluation raced this batch; its publish gate checks
	// gen, so bump it before sweeping.
	s.gen++
	dirty := make(map[string]bool)
	for key, on := range s.remapDirty {
		if on {
			dirty[key] = true
		}
	}
	s.remapDirty = nil
	for key, pf := range s.preds {
		if pf.rows == nil {
			dirty[key] = true
			continue
		}
		old := pf.rows.And(touched)
		now, err := s.db.MatchLeftRowSet(pf.q, touched)
		if err != nil {
			dirty[key] = true
			pf.rows = nil
			continue
		}
		if !setsEqual(old, now) {
			dirty[key] = true
			pf.rows = pf.rows.AndNot(touched).Or(now)
		}
	}
	s.validStamp = stamp
	if len(dirty) == 0 {
		return
	}

	// Plan repair pass, outside the shard locks: the pids whose grades may
	// have moved are the touched rows' keys plus the compaction-dropped
	// ones. A pid appearing in both is processed twice by ApplyDelta; the
	// second pass sees an unchanged grade and skips.
	rows := make([]int, 0, touched.Len())
	touched.ForEach(func(r int) bool { rows = append(rows, r); return true })
	pids := append(s.ev.RowPids(rows), droppedPids...)
	repaired := make(map[*entry]bool)
	for _, e := range s.c.planLists() {
		hit := false
		for _, k := range e.predKeys {
			if dirty[k] {
				hit = true
				break
			}
		}
		if !hit || e.canon == nil {
			continue
		}
		names, grades, err := topk.DeltaGrades(s.ev, e.canon, pids)
		if err == nil && e.lists.ApplyDelta(pids, names, grades) {
			repaired[e] = true
			s.counters.PlanRepairs.Add(1)
			s.c.recharge(e, 64+predKeyBytes(e.predKeys)+e.lists.SizeBytes())
		}
	}

	n := s.c.removeWhere(func(e *entry) bool {
		if repaired[e] {
			return false
		}
		for _, k := range e.predKeys {
			if dirty[k] {
				return true
			}
		}
		return false
	})
	s.counters.Invalidated.Add(int64(n))
}

// ApplyRemap is the delta.CacheSyncer compaction hook, arriving before the
// Sync's ApplyDelta: the store renumbered its base rows, so every
// registered footprint is reindexed through the composed old→new map.
// Footprints that lost rows (dropped by the compaction, or outside the
// remap's domain) are queued into the next ApplyDelta's dirty set — the
// membership they lost cannot be detected by the touched-row re-match,
// because the rows no longer exist to re-evaluate.
func (s *Server) ApplyRemap(remap []int32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	for key, pf := range s.preds {
		if pf.rows == nil {
			continue
		}
		nr := bitset.New()
		lost := false
		pf.rows.ForEach(func(old int) bool {
			if old < len(remap) && remap[old] >= 0 {
				nr.Add(int(remap[old]))
			} else {
				lost = true
			}
			return true
		})
		pf.rows = nr
		if lost {
			if s.remapDirty == nil {
				s.remapDirty = make(map[string]bool)
			}
			s.remapDirty[key] = true
		}
	}
}

// InvalidateAll is the delta.CacheSyncer full-rebuild hook: every entry and
// every footprint is dropped (the store state they described is gone), and
// the server resynchronizes to the given epochs.
func (s *Server) InvalidateAll(leftEpoch, rightEpoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.preds = make(map[string]*predFoot)
	n := s.c.purge()
	s.counters.Invalidated.Add(int64(n))
	s.validStamp = leftEpoch + rightEpoch
}

// Reset drops every entry and footprint and resynchronizes to the store's
// current epochs — a cold cache over the current snapshot. Unlike
// InvalidateAll it is caller-driven (no maintainer epochs needed) and does
// not count toward the Invalidated metric.
func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.preds = make(map[string]*predFoot)
	s.c.purge()
	s.validStamp = s.db.EpochStamp(s.tables...)
}

// setsEqual reports a == b without materializing a diff.
func setsEqual(a, b *bitset.Set) bool {
	return a.Len() == b.Len() && a.AndCard(b) == a.Len()
}
