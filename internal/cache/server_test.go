package cache_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hypre/internal/cache"
	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/topk"
	"hypre/internal/workload"
)

// testNet generates a small citation network for serving tests.
func testNet(t testing.TB, seed int64) *workload.Network {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPapers = 600
	cfg.NumAuthors = 150
	cfg.NumVenues = 12
	net, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func newServer(t testing.TB, net *workload.Network) (*cache.Server, *combine.Evaluator) {
	t.Helper()
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	return cache.NewServer(ev, cache.Config{}), ev
}

func sp(t testing.TB, pred string, in float64) hypre.ScoredPred {
	t.Helper()
	p, err := hypre.NewScoredPred(pred, in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// venueProfile builds a profile over venue/year predicates of the network.
func venueProfile(t testing.TB, net *workload.Network, venues []int, year int) []hypre.ScoredPred {
	t.Helper()
	var out []hypre.ScoredPred
	for i, vi := range venues {
		out = append(out, sp(t, fmt.Sprintf("dblp.venue=%q", net.Venues[vi]), 0.2+0.1*float64(i)))
	}
	if year > 0 {
		out = append(out, sp(t, fmt.Sprintf("dblp.year=%d", year), 0.35))
	}
	return out
}

func sameRanking(a, b []combine.ScoredTuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// uncached evaluates the canonical profile on a fresh evaluator — the
// reference answer every cached result must equal byte for byte.
func uncached(t testing.TB, net *workload.Network, prefs []hypre.ScoredPred, k int) []combine.ScoredTuple {
	t.Helper()
	canon, _ := combine.CanonicalProfile(prefs)
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	out, _, err := topk.EvaluateOneShot(ev, canon, k)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerHitIdentical: second ask is a Hit and matches both the first
// answer and a fresh uncached evaluation.
func TestServerHitIdentical(t *testing.T) {
	net := testNet(t, 7)
	srv, _ := newServer(t, net)
	prof := venueProfile(t, net, []int{0, 2, 5}, 2001)

	first, out1, err := srv.TopK(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != cache.Miss {
		t.Fatalf("cold ask outcome = %v, want Miss", out1)
	}
	second, out2, err := srv.TopK(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != cache.Hit {
		t.Fatalf("warm ask outcome = %v, want Hit", out2)
	}
	if !sameRanking(first, second) {
		t.Fatalf("hit diverged from the evaluation it cached")
	}
	if want := uncached(t, net, prof, 10); !sameRanking(second, want) {
		t.Fatalf("cached answer diverged from uncached evaluation")
	}
	// A permutation of the profile is the same fingerprint → same entry.
	perm := []hypre.ScoredPred{prof[3], prof[1], prof[0], prof[2]}
	permuted, out3, err := srv.TopK(perm, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out3 != cache.Hit || !sameRanking(permuted, second) {
		t.Fatalf("permuted profile missed the cache (outcome %v)", out3)
	}
}

// TestServerPlanHitNewK: a different k for a known fingerprint reuses the
// compiled plan (no store work) and still matches uncached evaluation. The
// evaluator is pre-warmed so the router takes the materialized path — a
// cold first ask streams instead, and a streaming plan has no lists to
// re-rank.
func TestServerPlanHitNewK(t *testing.T) {
	net := testNet(t, 8)
	srv, ev := newServer(t, net)
	prof := venueProfile(t, net, []int{1, 3}, 1997)
	if err := ev.MaterializeAll(prof); err != nil {
		t.Fatal(err)
	}

	if _, _, err := srv.TopK(prof, 10); err != nil {
		t.Fatal(err)
	}
	got, _, err := srv.TopK(prof, 25)
	if err != nil {
		t.Fatal(err)
	}
	if ph := srv.Counters().PlanHits.Load(); ph == 0 {
		t.Fatalf("second k did not reuse the compiled plan")
	}
	if want := uncached(t, net, prof, 25); !sameRanking(got, want) {
		t.Fatalf("plan-hit answer diverged from uncached evaluation")
	}
}

// mutateVenue rewrites one live paper's venue, returning its row id. It
// picks a row currently in fromVenue (by index into net.Venues).
func mutateVenue(t *testing.T, net *workload.Network, fromVenue, toVenue string) {
	t.Helper()
	dblp := net.DB.Table("dblp")
	for row := 0; row < dblp.Len(); row++ {
		if !dblp.Alive(row) || dblp.Value(row, "venue").AsString() != fromVenue {
			continue
		}
		if err := dblp.UpdateCol(row, "venue", predicate.String(toVenue)); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatalf("no live paper in venue %q", fromVenue)
}

// TestServerDeltaInvalidationPrecision: a mutation batch drops only the
// entries whose predicate membership moved; unrelated entries keep serving
// hits, and every post-sync answer matches uncached evaluation.
func TestServerDeltaInvalidationPrecision(t *testing.T) {
	net := testNet(t, 9)
	srv, ev := newServer(t, net)
	m, err := delta.NewMaintainer(ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachCache(srv)

	profA := venueProfile(t, net, []int{0}, 0) // venue[0] only
	profB := venueProfile(t, net, []int{1}, 0) // venue[1] only
	if _, _, err := srv.TopK(profA, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.TopK(profB, 10); err != nil {
		t.Fatal(err)
	}

	// Move a paper from venue[2] into venue[0]: profA's predicate gains a
	// row, profB's is untouched.
	mutateVenue(t, net, net.Venues[2], net.Venues[0])
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}

	gotB, outB, err := srv.TopK(profB, 10)
	if err != nil {
		t.Fatal(err)
	}
	if outB != cache.Hit {
		t.Fatalf("unrelated entry was invalidated (outcome %v)", outB)
	}
	gotA, outA, err := srv.TopK(profA, 10)
	if err != nil {
		t.Fatal(err)
	}
	if outA != cache.Miss {
		t.Fatalf("moved entry survived invalidation (outcome %v)", outA)
	}
	if want := uncached(t, net, profA, 10); !sameRanking(gotA, want) {
		t.Fatalf("post-sync answer for the moved profile diverged")
	}
	if want := uncached(t, net, profB, 10); !sameRanking(gotB, want) {
		t.Fatalf("surviving entry's answer diverged from the store")
	}
	if inv := srv.Counters().Invalidated.Load(); inv == 0 {
		t.Fatalf("invalidation counter did not move")
	}
}

// TestServerStaleBypass: between a mutation and the maintainer's Sync the
// server serves uncached (correct against the live store) and caches
// nothing; after Sync it resumes caching.
func TestServerStaleBypass(t *testing.T) {
	net := testNet(t, 10)
	srv, ev := newServer(t, net)
	m, err := delta.NewMaintainer(ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachCache(srv)
	prof := venueProfile(t, net, []int{0, 4}, 1995)
	if _, _, err := srv.TopK(prof, 10); err != nil {
		t.Fatal(err)
	}

	mutateVenue(t, net, net.Venues[3], net.Venues[0])
	got, out, err := srv.TopK(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out != cache.StaleBypass {
		t.Fatalf("unsynced store served outcome %v, want StaleBypass", out)
	}
	if want := uncached(t, net, prof, 10); !sameRanking(got, want) {
		t.Fatalf("bypass answer diverged from the live store")
	}
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, out, err = srv.TopK(prof, 10); err != nil || out != cache.Miss {
		t.Fatalf("post-sync ask = (%v, %v), want a caching Miss", out, err)
	}
	if _, out, err = srv.TopK(prof, 10); err != nil || out != cache.Hit {
		t.Fatalf("post-sync repeat = (%v, %v), want Hit", out, err)
	}
}

// TestServerSingleFlight: concurrent identical cold queries collapse to one
// evaluation and all receive the same answer.
func TestServerSingleFlight(t *testing.T) {
	net := testNet(t, 11)
	srv, _ := newServer(t, net)
	prof := venueProfile(t, net, []int{0, 1, 2, 3}, 2004)

	const n = 16
	results := make([][]combine.ScoredTuple, n)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			out, _, err := srv.TopK(prof, 10)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = out
		}(i)
	}
	close(gate)
	wg.Wait()
	snap := srv.Counters().Snapshot()
	if snap.Misses != 1 {
		t.Fatalf("%d evaluations for one cold fingerprint, want 1", snap.Misses)
	}
	if snap.Hits+snap.SharedWaits != n-1 {
		t.Fatalf("hits %d + shared %d != %d waiters", snap.Hits, snap.SharedWaits, n-1)
	}
	for i := 1; i < n; i++ {
		if !sameRanking(results[0], results[i]) {
			t.Fatalf("concurrent requester %d received a different answer", i)
		}
	}
}

// TestServerEquivalenceRandomized is the randomized acceptance suite:
// across seeds × mutation batches × zipf query mixes, every cached answer
// equals a fresh uncached evaluation of the same canonical profile.
func TestServerEquivalenceRandomized(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			net := testNet(t, seed)
			srv, ev := newServer(t, net)
			m, err := delta.NewMaintainer(ev, nil)
			if err != nil {
				t.Fatal(err)
			}
			m.AttachCache(srv)
			stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
			if err != nil {
				t.Fatal(err)
			}

			// A pool of overlapping profiles: shared venue predicates make
			// invalidation hit several entries at once.
			rng := rand.New(rand.NewSource(seed))
			var pool [][]hypre.ScoredPred
			for i := 0; i < 8; i++ {
				nv := 1 + rng.Intn(3)
				venues := make([]int, nv)
				for j := range venues {
					venues[j] = rng.Intn(len(net.Venues))
				}
				year := 0
				if rng.Intn(2) == 0 {
					year = 1991 + rng.Intn(20)
				}
				pool = append(pool, venueProfile(t, net, venues, year))
			}
			mixCfg := workload.ProfileMixConfig{Seed: seed, S: 1.4}
			uids := make([]int64, len(pool))
			for i := range uids {
				uids[i] = int64(i)
			}
			mix := workload.ZipfProfileSequence(uids, 60, mixCfg)

			for batch := 0; batch < 4; batch++ {
				for _, idx := range mix.Seq {
					got, _, err := srv.TopK(pool[idx], 10)
					if err != nil {
						t.Fatal(err)
					}
					if want := uncached(t, net, pool[idx], 10); !sameRanking(got, want) {
						t.Fatalf("batch %d profile %d: cached answer diverged from uncached", batch, idx)
					}
				}
				if _, err := stream.Apply(30); err != nil {
					t.Fatal(err)
				}
				if _, err := m.Sync(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestServerConcurrentServeAndMutate interleaves cache-hit serving with
// mutation batches and delta Syncs — the -race interleaving test. Served
// answers during the window only need to be error-free (they may be
// bypasses); after the final Sync every answer must match uncached
// evaluation again.
func TestServerConcurrentServeAndMutate(t *testing.T) {
	net := testNet(t, 13)
	srv, ev := newServer(t, net)
	m, err := delta.NewMaintainer(ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachCache(srv)
	stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}

	var pool [][]hypre.ScoredPred
	for i := 0; i < 6; i++ {
		pool = append(pool, venueProfile(t, net, []int{i, (i + 3) % 12}, 1993+i))
	}
	// Warm the cache.
	for _, p := range pool {
		if _, _, err := srv.TopK(p, 10); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := srv.TopK(pool[i%len(pool)], 10); err != nil {
					t.Error(err)
					return
				}
				i++
			}
		}(w)
	}
	for batch := 0; batch < 6; batch++ {
		if _, err := stream.Apply(20); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pool {
		got, _, err := srv.TopK(p, 10)
		if err != nil {
			t.Fatal(err)
		}
		if want := uncached(t, net, p, 10); !sameRanking(got, want) {
			t.Fatalf("profile %d: post-churn cached answer diverged from the store", i)
		}
	}
}
