package cache_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"hypre/internal/cache"
	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/hypre"
	"hypre/internal/obs"
	"hypre/internal/workload"
)

func newEval(net *workload.Network) *combine.Evaluator {
	return combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
}

func mustOutcome(t *testing.T, srv *cache.Server, prof []hypre.ScoredPred, k int, want cache.Outcome) {
	t.Helper()
	_, out, err := srv.TopK(prof, k)
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Fatalf("outcome = %v, want %v", out, want)
	}
}

// TestServerObsCounterInvariant drives every route class through a real
// server and pins the split the Evaluations counter introduces: for
// single-flight leaders, Misses == PlanHits + Evaluations, and ServedRate
// counts plan hits where HitRate does not.
func TestServerObsCounterInvariant(t *testing.T) {
	net := testNet(t, 21)
	ev := newEval(net)
	reg := obs.NewRegistry()
	srv := cache.NewServer(ev, cache.Config{Registry: reg})
	m, err := delta.NewMaintainer(ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachCache(srv)
	prof := venueProfile(t, net, []int{1, 3}, 1997)
	if err := ev.MaterializeAll(prof); err != nil {
		t.Fatal(err)
	}

	// Cold miss (evaluation), warm hit, plan hit at a new k, stale bypass.
	// After the Sync the result entry is invalidated but the compiled plan
	// survives — its TA lists are repaired in place — so the post-sync miss
	// is a plan hit, not a re-evaluation.
	mustOutcome(t, srv, prof, 10, cache.Miss)
	mustOutcome(t, srv, prof, 10, cache.Hit)
	mustOutcome(t, srv, prof, 25, cache.Miss) // result miss served by the plan
	mutateVenue(t, net, net.Venues[4], net.Venues[1])
	mustOutcome(t, srv, prof, 10, cache.StaleBypass)
	if _, err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	mustOutcome(t, srv, prof, 10, cache.Miss)

	snap := srv.Counters().Snapshot()
	if snap.Misses != snap.PlanHits+snap.Evaluations {
		t.Fatalf("Misses %d != PlanHits %d + Evaluations %d",
			snap.Misses, snap.PlanHits, snap.Evaluations)
	}
	if snap.PlanHits != 2 {
		t.Fatalf("PlanHits = %d, want the new-k ask plus the post-sync repaired plan", snap.PlanHits)
	}
	if snap.PlanRepairs != 1 {
		t.Fatalf("PlanRepairs = %d, want 1 (the sync patched the plan in place)", snap.PlanRepairs)
	}
	if snap.StaleBypasses != 1 {
		t.Fatalf("StaleBypasses = %d, want 1", snap.StaleBypasses)
	}
	if snap.ServedRate() <= snap.HitRate() {
		t.Fatalf("ServedRate %.3f should exceed HitRate %.3f with a plan hit on the board",
			snap.ServedRate(), snap.HitRate())
	}

	// The registry saw the same traffic: per-route histograms and the
	// counter group render in the text exposition.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`hypre_hist_count{name="serve_hit"} 1`,
		`hypre_hist_count{name="serve_miss"} 3`,
		`hypre_hist_count{name="serve_bypass"} 1`,
		`hypre_group{name="cache",field="plan_hits"} 2`,
		`hypre_group{name="cache",field="evaluations"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}

// TestServerTraceCoverage asserts the acceptance bound: on both the hit and
// the miss route, the contiguous top-level spans of a served query's trace
// sum to within 10% of the trace's own end-to-end total.
func TestServerTraceCoverage(t *testing.T) {
	net := testNet(t, 22)
	srv, _ := newServer(t, net)
	prof := venueProfile(t, net, []int{0, 2}, 2001)

	for _, route := range []string{"miss", "hit"} {
		tr := obs.NewTrace()
		if _, _, err := srv.TopKTraced(prof, 10, tr); err != nil {
			t.Fatal(err)
		}
		if tr.Route != route {
			t.Fatalf("route = %q, want %q", tr.Route, route)
		}
		if tr.Total <= 0 || len(tr.Spans) == 0 {
			t.Fatalf("%s trace not finished: total=%v spans=%d", route, tr.Total, len(tr.Spans))
		}
		cover := float64(tr.TopLevelSum()) / float64(tr.Total)
		if cover < 0.9 || cover > 1.1 {
			t.Fatalf("%s trace span coverage %.3f outside [0.9, 1.1]; spans: %+v",
				route, cover, tr.Spans)
		}
	}

	// A fresh miss trace carries the execution decision, engine counters,
	// and the query identity.
	tr := obs.NewTrace()
	if _, _, err := srv.TopKTraced(venueProfile(t, net, []int{5}, 0), 10, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Exec == "" {
		t.Fatalf("miss trace has no exec decision")
	}
	if tr.Eng.RowsSeen == 0 && tr.Eng.TARounds == 0 {
		t.Fatalf("miss trace has empty engine counters: %+v", tr.Eng)
	}
	if tr.Query == "" || tr.K != 10 {
		t.Fatalf("trace identity not stamped: query=%q k=%d", tr.Query, tr.K)
	}
}

// TestServerSlowLogCapture: with a zero threshold every request lands in
// the ring, traced requests carry their trace, and the route labels match
// the outcomes the server reported.
func TestServerSlowLogCapture(t *testing.T) {
	net := testNet(t, 23)
	ev := newEval(net)
	slow := obs.NewSlowLog(0, 8)
	srv := cache.NewServer(ev, cache.Config{SlowLog: slow})
	prof := venueProfile(t, net, []int{1}, 1999)

	if _, _, err := srv.TopK(prof, 10); err != nil { // untraced miss
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	if _, _, err := srv.TopKTraced(prof, 10, tr); err != nil { // traced hit
		t.Fatal(err)
	}

	entries := slow.Snapshot()
	if len(entries) != 2 {
		t.Fatalf("slow log holds %d entries, want 2", len(entries))
	}
	if entries[0].Route != "miss" || entries[1].Route != "hit" {
		t.Fatalf("routes = %q, %q; want miss, hit", entries[0].Route, entries[1].Route)
	}
	for i, e := range entries {
		if e.Query == "" || e.K != 10 || e.TotalNs < 0 {
			t.Fatalf("entry %d incomplete: %+v", i, e)
		}
	}
	if entries[0].Trace != nil {
		t.Fatalf("untraced request logged a trace")
	}
	if entries[1].Trace == nil || entries[1].Trace.Route != "hit" {
		t.Fatalf("traced request lost its trace: %+v", entries[1].Trace)
	}
}

// TestServerTracedServeVsMutate interleaves traced serving with mutation
// batches and maintainer syncs — the -race proof that per-query traces,
// histograms, and the slow log add no shared mutable state to the serve
// path. Every traced request must still satisfy the span-coverage bound.
func TestServerTracedServeVsMutate(t *testing.T) {
	net := testNet(t, 24)
	ev := newEval(net)
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(50*time.Microsecond, 32)
	srv := cache.NewServer(ev, cache.Config{Registry: reg, SlowLog: slow})
	m, err := delta.NewMaintainer(ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachCache(srv)
	stream, err := workload.NewUpdateStream(net, workload.DefaultStreamConfig())
	if err != nil {
		t.Fatal(err)
	}

	pool := [][]int{{0}, {1, 2}, {3}, {0, 4}}
	const rounds = 40
	var wg sync.WaitGroup
	for g := 0; g < len(pool); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prof := venueProfile(t, net, pool[g], 0)
			for i := 0; i < rounds; i++ {
				tr := obs.NewTrace()
				if _, _, err := srv.TopKTraced(prof, 10, tr); err != nil {
					t.Error(err)
					return
				}
				if cover := float64(tr.TopLevelSum()) / float64(tr.Total); tr.Total > 0 && (cover < 0.9 || cover > 1.1) {
					t.Errorf("goroutine %d round %d: span coverage %.3f spans %+v", g, i, cover, tr.Spans)
					return
				}
			}
		}(g)
	}
	for batch := 0; batch < 6; batch++ {
		if _, err := stream.Apply(20); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var total int64
	for _, name := range []string{"serve_hit", "serve_miss", "serve_shared", "serve_bypass"} {
		total += reg.Histogram(name).Snapshot().Count
	}
	if want := int64(len(pool) * rounds); total != want {
		t.Fatalf("histograms recorded %d requests, want %d", total, want)
	}
	snap := srv.Counters().Snapshot()
	if snap.Misses != snap.PlanHits+snap.Evaluations {
		t.Fatalf("under concurrency: Misses %d != PlanHits %d + Evaluations %d",
			snap.Misses, snap.PlanHits, snap.Evaluations)
	}
}
