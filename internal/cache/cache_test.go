package cache

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"hypre/internal/combine"
)

func fpOf(b byte) combine.Fingerprint {
	var fp combine.Fingerprint
	fp[0] = b
	fp[15] = b
	return fp
}

func resultEntry(fp combine.Fingerprint, k int, size int64, preds ...string) *entry {
	return &entry{
		key:      entryKey{fp: fp, k: int32(k), kind: kindResult},
		tuples:   []combine.ScoredTuple{{PID: 1, Intensity: 0.5}},
		predKeys: preds,
		size:     size,
	}
}

// TestCacheLRUByteBudget: a single-shard cache under a tight byte budget
// keeps the hot end, evicts from the cold end, counts every eviction, and
// its byte accounting never exceeds the budget.
func TestCacheLRUByteBudget(t *testing.T) {
	c := NewCache(Config{MaxBytes: 1000, Shards: 1})
	for i := 0; i < 10; i++ {
		c.put(resultEntry(fpOf(byte(i)), 10, 300))
	}
	entries, bytes := c.Stats()
	if bytes > 1000 {
		t.Fatalf("byte charge %d exceeds the 1000 budget", bytes)
	}
	if entries != 3 {
		t.Fatalf("want 3 resident entries under budget, got %d", entries)
	}
	if ev := c.Counters().Evictions.Load(); ev != 7 {
		t.Fatalf("want 7 evictions, got %d", ev)
	}
	// The survivors are the three most recent inserts.
	for i := 7; i < 10; i++ {
		if _, ok := c.get(entryKey{fp: fpOf(byte(i)), k: 10, kind: kindResult}); !ok {
			t.Fatalf("recent entry %d was evicted", i)
		}
	}
	// A get refreshes recency: touch the oldest survivor, insert one more,
	// and the untouched middle entry is the victim instead.
	c.get(entryKey{fp: fpOf(7), k: 10, kind: kindResult})
	c.put(resultEntry(fpOf(20), 10, 300))
	if _, ok := c.get(entryKey{fp: fpOf(7), k: 10, kind: kindResult}); !ok {
		t.Fatalf("recency refresh did not protect the touched entry")
	}
	if _, ok := c.get(entryKey{fp: fpOf(8), k: 10, kind: kindResult}); ok {
		t.Fatalf("LRU victim selection ignored recency")
	}
}

// TestCacheOversizedEntryNotCached: an entry larger than a shard's whole
// budget is refused instead of evicting everything.
func TestCacheOversizedEntryNotCached(t *testing.T) {
	c := NewCache(Config{MaxBytes: 1000, Shards: 1})
	c.put(resultEntry(fpOf(1), 10, 200))
	c.put(resultEntry(fpOf(2), 10, 5000))
	if _, ok := c.get(entryKey{fp: fpOf(2), k: 10, kind: kindResult}); ok {
		t.Fatalf("oversized entry was cached")
	}
	if _, ok := c.get(entryKey{fp: fpOf(1), k: 10, kind: kindResult}); !ok {
		t.Fatalf("oversized insert evicted a resident entry")
	}
}

// TestCacheRemoveWhere: the invalidation sweep drops exactly the entries
// depending on a dirty predicate.
func TestCacheRemoveWhere(t *testing.T) {
	c := NewCache(Config{MaxBytes: 1 << 20, Shards: 2})
	c.put(resultEntry(fpOf(1), 10, 100, "a", "b"))
	c.put(resultEntry(fpOf(2), 10, 100, "b", "c"))
	c.put(resultEntry(fpOf(3), 10, 100, "c"))
	dropped := c.removeWhere(func(e *entry) bool {
		for _, k := range e.predKeys {
			if k == "b" {
				return true
			}
		}
		return false
	})
	if dropped != 2 {
		t.Fatalf("want 2 dropped, got %d", dropped)
	}
	if _, ok := c.get(entryKey{fp: fpOf(3), k: 10, kind: kindResult}); !ok {
		t.Fatalf("unrelated entry was swept")
	}
	entries, _ := c.Stats()
	if entries != 1 {
		t.Fatalf("want 1 survivor, got %d", entries)
	}
}

// TestFlightGroupDedup: N concurrent calls for one key run fn exactly once;
// everyone shares the leader's value.
func TestFlightGroupDedup(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	key := entryKey{fp: fpOf(9), k: 5, kind: kindResult}

	const n = 24
	var leaders atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, leader, err := g.do(context.Background(), key, func() ([]combine.ScoredTuple, error) {
				calls.Add(1)
				<-release
				return []combine.ScoredTuple{{PID: 42, Intensity: 1}}, nil
			})
			if err != nil {
				t.Error(err)
			}
			if leader {
				leaders.Add(1)
			}
			if len(val) != 1 || val[0].PID != 42 {
				t.Error("waiter received wrong value")
			}
		}()
	}
	// Let every goroutine enqueue before the leader finishes. The leader
	// blocks on release; waiters block on its WaitGroup.
	for calls.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
	if l := leaders.Load(); l != 1 {
		t.Fatalf("%d leaders, want 1", l)
	}
	// The key is released after the flight: a later call runs fn again.
	_, leader, _ := g.do(context.Background(), key, func() ([]combine.ScoredTuple, error) { return nil, nil })
	if !leader {
		t.Fatalf("post-flight call should lead a fresh flight")
	}
}
