// Command hypred is the long-lived preference server: it generates (or will
// one day load) a citation network, builds the HYPRE preference workload
// over it, and serves the multi-tenant HTTP API of internal/serve — session
// profiles, fingerprint-cached top-k queries, batched mutations, admission
// control per route class, and the /metrics + /debug ops surface — all on
// one listener.
//
//	hypred -addr :8080 -seed.sessions 4
//
// boots a default network with four pre-seeded sessions (their ids are
// logged) so a client can query without first storing a profile.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"hypre/internal/admit"
	"hypre/internal/experiments"
	"hypre/internal/relstore"
	"hypre/internal/serve"
	"hypre/internal/workload"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")

		papers  = flag.Int("papers", 4000, "generated papers")
		authors = flag.Int("authors", 1200, "generated authors")
		venues  = flag.Int("venues", 40, "generated venues")
		seed    = flag.Int64("seed", 42, "workload seed")
		zipf    = flag.Float64("zipf", 0, "venue/author popularity skew (0 = default)")

		cacheBytes = flag.Int64("cache.bytes", 0, "result/plan cache budget (0 = default 64 MiB)")
		slowThresh = flag.Duration("slow.threshold", 25*time.Millisecond, "slow-log threshold")

		qRate  = flag.Float64("admit.query.rate", 0, "query admission rate/s (0 = unlimited)")
		qBurst = flag.Int("admit.query.burst", 64, "query token-bucket depth")
		qQueue = flag.Int("admit.query.queue", 2048, "query max queued arrivals")
		qSLO   = flag.Duration("admit.query.slo", 50*time.Millisecond, "query queue-delay SLO")
		mRate  = flag.Float64("admit.mutate.rate", 0, "mutate admission rate/s (0 = unlimited)")
		mBurst = flag.Int("admit.mutate.burst", 16, "mutate token-bucket depth")
		mQueue = flag.Int("admit.mutate.queue", 512, "mutate max queued arrivals")
		mSLO   = flag.Duration("admit.mutate.slo", 100*time.Millisecond, "mutate queue-delay SLO")

		seedSessions = flag.Int("seed.sessions", 0, "pre-seed N sessions from extracted user profiles")
		groupCommit  = flag.Bool("group.commit", true, "serve writes through the group-commit store path")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumPapers = *papers
	cfg.NumAuthors = *authors
	cfg.NumVenues = *venues
	if *zipf > 0 {
		cfg.ZipfS = *zipf
	}

	log.Printf("hypred: generating network (papers=%d authors=%d venues=%d seed=%d)",
		cfg.NumPapers, cfg.NumAuthors, cfg.NumVenues, cfg.Seed)
	lab, err := buildLab(cfg, *groupCommit)
	if err != nil {
		log.Fatalf("hypred: workload: %v", err)
	}

	app, err := serve.New(serve.Options{
		Net:        lab.Net,
		CacheBytes: *cacheBytes,
		Slow:       *slowThresh,
		Query:      admit.Config{Rate: *qRate, Burst: *qBurst, MaxQueue: *qQueue, SLO: *qSLO},
		Mutate:     admit.Config{Rate: *mRate, Burst: *mBurst, MaxQueue: *mQueue, SLO: *mSLO},
	})
	if err != nil {
		log.Fatalf("hypred: %v", err)
	}

	// Pre-seed sessions from the extracted preference workload, richest
	// profiles first, so a scripted client (the CI smoke) has known-good
	// sessions to replay without speaking the predicate language itself.
	if *seedSessions > 0 {
		counts := lab.Prefs.CountByUser()
		users := append([]int64(nil), lab.Prefs.Users...)
		sort.Slice(users, func(i, j int) bool {
			if counts[users[i]] != counts[users[j]] {
				return counts[users[i]] > counts[users[j]]
			}
			return users[i] < users[j]
		})
		n := 0
		for _, uid := range users {
			if n >= *seedSessions {
				break
			}
			prof := lab.ProfileFor(uid, 16)
			if len(prof) == 0 {
				continue
			}
			id := fmt.Sprintf("u%d", uid)
			fp, err := app.SeedSession(id, prof)
			if err != nil {
				continue
			}
			log.Printf("hypred: seeded session %s (%d prefs, fingerprint %s)", id, len(prof), fp.String())
			n++
		}
		if n == 0 {
			log.Fatal("hypred: -seed.sessions set but no usable profiles found")
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           app.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("hypred: serving on %s (POST /v1/query, PUT/GET /v1/session/{id}/profile, POST /v1/mutate, /metrics, /debug)", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("hypred: listen: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("hypred: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// buildLab builds the experiments.Lab, optionally over a group-commit store.
func buildLab(cfg workload.Config, groupCommit bool) (*experiments.Lab, error) {
	if !groupCommit {
		return experiments.NewLab(cfg)
	}
	return experiments.NewLabWith(cfg, relstore.WithGroupCommit(true))
}
