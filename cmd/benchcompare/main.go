// Command benchcompare is the CI bench-regression gate: it diffs a current
// benchrunner -benchjson record against a committed baseline
// (BENCH_PR*.json) and exits non-zero when any tracked hot-path median
// regresses beyond that metric's threshold ratio. Tracked metrics:
//
//	peps_complete_ns            median complete-variant PEPS time over every fig39 point
//	peps_quant_ns               median quantitative-only PEPS time over every fig39 point
//	pair_build_ns               median pair-table build across fig39 uids
//	materialize_best_ns         median best cold profile materialization across uids
//	update_maint_incremental_ns median incremental maintenance across uids
//	oneshot_stream_best_ns      median best cold streaming one-shot query across uids and k
//	cacheserve_off_p50_ns       serving median without the result cache
//	cacheserve_on_p50_ns        serving median through the result/plan cache
//	cacheserve_on_p99_ns        serving tail through the cache (misses + churn)
//	stream_ops_sec              group-commit writer throughput (higher is better)
//	stream_p99_staleness_ns     open-loop commit-to-sync staleness tail
//	stream_sync_median_ns       per-sync maintenance median at base scale
//	stream_sync_median_4x_ns    per-sync maintenance median at 4x papers
//	serve_ops_sec               end-to-end HTTP serving throughput (higher is better)
//	serve_p50_ns                closed-loop HTTP query median
//	serve_p99_ns                closed-loop HTTP query tail
//	serve_shed_rate             burst-phase shed fraction (config-pinned ceiling)
//	serve_goodput_ops_sec       admitted throughput under burst (higher is better)
//	serve_burst_p99_ns          admitted end-to-end p99 under burst
//
// Most metrics are medians where lower is better; stream_ops_sec,
// serve_ops_sec, and serve_goodput_ops_sec are higher-is-better, and the
// gate inverts their thresholds (current must stay above baseline ÷ limit).
//
// Thresholds are per metric: sub-millisecond medians (incremental
// maintenance, quant-only PEPS) jitter more between CI runs than the
// multi-millisecond scans, so one global ratio either lets slow paths creep
// or flakes the fast ones. Each metric has a tuned default, -threshold
// overrides the fallback for metrics without one, and -thresholds
// "metric=ratio,metric=ratio" pins individual metrics from the command line.
//
// Medians across points/uids keep single noisy samples from tripping the
// gate; a metric absent from either file is skipped (partial runs compare
// what they have), but if nothing at all is comparable the gate fails —
// a vacuous pass would hide a broken bench step.
//
// Usage:
//
//	benchcompare -baseline BENCH_PR6.json -current BENCH_results.json
//	             [-threshold 1.25] [-thresholds pair_build_ns=1.2,peps_quant_ns=1.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// defaultThresholds is the per-metric regression budget: current median must
// stay below baseline × ratio. The noisier (smaller-denominator) medians get
// more headroom.
var defaultThresholds = map[string]float64{
	"peps_complete_ns":            1.25,
	"peps_quant_ns":               1.35,
	"pair_build_ns":               1.25,
	"materialize_best_ns":         1.25,
	"update_maint_incremental_ns": 1.40,
	"oneshot_stream_best_ns":      1.30,
	// Serving-tier percentiles: the cache-on medians are microseconds (map
	// lookup + clone), so they jitter hardest and get the most headroom; the
	// p99 mixes misses and churn-phase re-evaluations.
	"cacheserve_on_p50_ns":  1.60,
	"cacheserve_on_p99_ns":  1.75,
	"cacheserve_off_p50_ns": 1.35,
	// Sustained-stream write path: throughput is higher-is-better (current
	// must stay above baseline ÷ limit); the staleness tail mixes scheduler
	// jitter with sync cost and gets the widest budget.
	"stream_ops_sec":           1.35,
	"stream_p99_staleness_ns":  2.00,
	"stream_sync_median_ns":    1.40,
	"stream_sync_median_4x_ns": 1.40,
	// End-to-end HTTP serving: throughput and goodput are higher-is-better;
	// the burst p99 rides OS scheduler + HTTP stack jitter and gets the
	// widest budget. The shed rate is configuration-pinned (offered rate vs
	// admitted rate), so its budget guards the admission arithmetic, not the
	// machine.
	"serve_ops_sec":         1.35,
	"serve_p50_ns":          1.60,
	"serve_p99_ns":          1.75,
	"serve_shed_rate":       1.35,
	"serve_goodput_ops_sec": 1.35,
	"serve_burst_p99_ns":    2.00,
}

// higherIsBetter flips a metric's regression direction: current/baseline
// below 1/limit fails, above is an improvement.
var higherIsBetter = map[string]bool{
	"stream_ops_sec":        true,
	"serve_ops_sec":         true,
	"serve_goodput_ops_sec": true,
}

// benchRecord mirrors the subset of benchrunner's -benchjson schema the
// gate tracks.
type benchRecord struct {
	Fig39 []struct {
		UID         int64 `json:"uid"`
		PairBuildNs int64 `json:"pair_build_ns"`
		Points      []struct {
			K          int   `json:"k"`
			CompleteNs int64 `json:"complete_ns"`
			QuantNs    int64 `json:"quant_only_ns"`
		} `json:"points"`
	} `json:"fig39_peps_time"`
	Materialize []struct {
		UID    int64 `json:"uid"`
		BestNs int64 `json:"best_ns"`
	} `json:"materialize_profile"`
	Updates []struct {
		UID                int64 `json:"uid"`
		MaintIncrementalNs int64 `json:"maint_incremental_ns"`
	} `json:"update_stream"`
	OneShot []struct {
		UID          int64 `json:"uid"`
		K            int   `json:"k"`
		StreamBestNs int64 `json:"oneshot_stream_best_ns"`
	} `json:"oneshot"`
	CacheServe []struct {
		OffP50Ns int64 `json:"cacheserve_off_p50_ns"`
		OffP99Ns int64 `json:"cacheserve_off_p99_ns"`
		OnP50Ns  int64 `json:"cacheserve_on_p50_ns"`
		OnP99Ns  int64 `json:"cacheserve_on_p99_ns"`
	} `json:"cacheserve"`
	Stream []struct {
		GroupOpsSec    float64 `json:"stream_ops_sec"`
		P99StalenessNs int64   `json:"stream_p99_staleness_ns"`
		SyncMedianNs   int64   `json:"stream_sync_median_ns"`
		SyncMedian4xNs int64   `json:"stream_sync_median_4x_ns"`
	} `json:"stream"`
	Serve []struct {
		OpsSec     float64 `json:"serve_ops_sec"`
		P50Ns      int64   `json:"serve_p50_ns"`
		P99Ns      int64   `json:"serve_p99_ns"`
		ShedRate   float64 `json:"serve_shed_rate"`
		GoodputPS  float64 `json:"serve_goodput_ops_sec"`
		BurstP99Ns int64   `json:"serve_burst_p99_ns"`
	} `json:"serve"`
}

func load(path string) (*benchRecord, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchRecord
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// metrics flattens a record into the tracked medians; absent sections are
// simply missing keys.
func metrics(r *benchRecord) map[string]float64 {
	out := map[string]float64{}
	var complete, quant, pair []float64
	for _, f := range r.Fig39 {
		pair = append(pair, float64(f.PairBuildNs))
		for _, p := range f.Points {
			complete = append(complete, float64(p.CompleteNs))
			quant = append(quant, float64(p.QuantNs))
		}
	}
	put(out, "peps_complete_ns", complete)
	put(out, "peps_quant_ns", quant)
	put(out, "pair_build_ns", pair)
	var mat []float64
	for _, m := range r.Materialize {
		mat = append(mat, float64(m.BestNs))
	}
	put(out, "materialize_best_ns", mat)
	var upd []float64
	for _, u := range r.Updates {
		upd = append(upd, float64(u.MaintIncrementalNs))
	}
	put(out, "update_maint_incremental_ns", upd)
	var oneshot []float64
	for _, o := range r.OneShot {
		oneshot = append(oneshot, float64(o.StreamBestNs))
	}
	put(out, "oneshot_stream_best_ns", oneshot)
	var csOffP50, csOnP50, csOnP99 []float64
	for _, c := range r.CacheServe {
		csOffP50 = append(csOffP50, float64(c.OffP50Ns))
		csOnP50 = append(csOnP50, float64(c.OnP50Ns))
		csOnP99 = append(csOnP99, float64(c.OnP99Ns))
	}
	put(out, "cacheserve_off_p50_ns", csOffP50)
	put(out, "cacheserve_on_p50_ns", csOnP50)
	put(out, "cacheserve_on_p99_ns", csOnP99)
	var stOps, stP99, stSync, stSync4 []float64
	for _, s := range r.Stream {
		stOps = append(stOps, s.GroupOpsSec)
		stP99 = append(stP99, float64(s.P99StalenessNs))
		stSync = append(stSync, float64(s.SyncMedianNs))
		stSync4 = append(stSync4, float64(s.SyncMedian4xNs))
	}
	put(out, "stream_ops_sec", stOps)
	put(out, "stream_p99_staleness_ns", stP99)
	put(out, "stream_sync_median_ns", stSync)
	put(out, "stream_sync_median_4x_ns", stSync4)
	var svOps, svP50, svP99, svShed, svGood, svBurst []float64
	for _, s := range r.Serve {
		svOps = append(svOps, s.OpsSec)
		svP50 = append(svP50, float64(s.P50Ns))
		svP99 = append(svP99, float64(s.P99Ns))
		svShed = append(svShed, s.ShedRate)
		svGood = append(svGood, s.GoodputPS)
		svBurst = append(svBurst, float64(s.BurstP99Ns))
	}
	put(out, "serve_ops_sec", svOps)
	put(out, "serve_p50_ns", svP50)
	put(out, "serve_p99_ns", svP99)
	put(out, "serve_shed_rate", svShed)
	put(out, "serve_goodput_ops_sec", svGood)
	put(out, "serve_burst_p99_ns", svBurst)
	return out
}

func put(m map[string]float64, key string, samples []float64) {
	if len(samples) > 0 {
		m[key] = median(samples)
	}
}

func median(s []float64) float64 {
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// parseOverrides reads "metric=ratio,metric=ratio"; unknown metric names are
// an error — a typo would otherwise silently gate nothing.
func parseOverrides(spec string) (map[string]float64, error) {
	out := map[string]float64{}
	if spec == "" {
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -thresholds entry %q (want metric=ratio)", part)
		}
		if _, known := defaultThresholds[kv[0]]; !known {
			return nil, fmt.Errorf("unknown metric %q in -thresholds", kv[0])
		}
		ratio, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || ratio <= 0 {
			return nil, fmt.Errorf("bad ratio %q for metric %q", kv[1], kv[0])
		}
		out[kv[0]] = ratio
	}
	return out, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline BENCH_*.json")
		currentPath  = flag.String("current", "", "freshly generated -benchjson record")
		threshold    = flag.Float64("threshold", 0, "override every metric's threshold with one global ratio (0 = use per-metric defaults)")
		thresholds   = flag.String("thresholds", "", "per-metric overrides, e.g. pair_build_ns=1.2,peps_quant_ns=1.5")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -baseline and -current are required")
		os.Exit(2)
	}
	overrides, err := parseOverrides(*thresholds)
	if err != nil {
		fatal(err)
	}
	// Per-metric defaults, then the global -threshold if given, then
	// explicit -thresholds entries, most specific last.
	limits := make(map[string]float64, len(defaultThresholds))
	for k, v := range defaultThresholds {
		limits[k] = v
		if *threshold > 0 {
			limits[k] = *threshold
		}
		if o, ok := overrides[k]; ok {
			limits[k] = o
		}
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}
	bm, cm := metrics(base), metrics(cur)

	keys := make([]string, 0, len(bm))
	for k := range bm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	compared, failed := 0, 0
	fmt.Printf("bench regression gate: %s vs baseline %s (per-metric thresholds)\n",
		*currentPath, *baselinePath)
	for _, k := range keys {
		b := bm[k]
		c, ok := cm[k]
		if !ok {
			fmt.Printf("  %-28s baseline %14s  current        —  SKIP (not in current run)\n", k, fmtVal(b))
			continue
		}
		compared++
		ratio := c / b
		limit := limits[k]
		verdict := "ok"
		if higherIsBetter[k] {
			// Throughput-style metric: failing means falling below the
			// baseline by more than the budget.
			if ratio < 1/limit {
				verdict = "REGRESSION"
				failed++
			}
			fmt.Printf("  %-28s baseline %14s  current %14s  %5.2fx  (floor %.2fx)  %s\n",
				k, fmtVal(b), fmtVal(c), ratio, 1/limit, verdict)
			continue
		}
		if ratio > limit {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("  %-28s baseline %14s  current %14s  %5.2fx  (limit %.2fx)  %s\n",
			k, fmtVal(b), fmtVal(c), ratio, limit, verdict)
	}
	for k := range cm {
		if _, ok := bm[k]; !ok {
			fmt.Printf("  %-28s (new metric, no baseline — recorded only)\n", k)
		}
	}
	if compared == 0 {
		fatal(fmt.Errorf("no comparable metrics between %s and %s — bench step broken?", *baselinePath, *currentPath))
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d tracked medians regressed beyond their limits", failed, compared))
	}
	fmt.Printf("all %d tracked medians within their per-metric limits\n", compared)
}

// fmtVal renders a metric value: fractional metrics (shed rate) keep their
// precision, everything else prints as a whole count.
func fmtVal(v float64) string {
	if v != 0 && v < 10 {
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(1)
}
