// Command benchrunner regenerates every table and figure of the
// dissertation's evaluation (see DESIGN.md's per-experiment index) over the
// synthetic DBLP workload and prints the series to stdout.
//
// Usage:
//
//	benchrunner [-exp all|table10,fig28,...] [-papers N] [-authors N]
//	            [-venues N] [-seed N] [-cap N] [-k N] [-runs N]
//	            [-benchjson FILE]
//
// The timed experiments (fig39 PEPS sweep, ablation pair-cache pricing)
// additionally land in a machine-readable BENCH_*.json file so the
// performance trajectory can be tracked across PRs; -benchjson "" disables
// the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hypre/internal/cache"
	"hypre/internal/experiments"
	"hypre/internal/metrics"
	"hypre/internal/obs"
	"hypre/internal/workload"
)

// benchReport is the machine-readable perf record benchrunner writes.
// Durations are nanoseconds.
type benchReport struct {
	Config      map[string]int64       `json:"config"`
	Fig39       []fig39JSON            `json:"fig39_peps_time,omitempty"`
	PairCache   []pairCacheJSON        `json:"ablation_pair_cache,omitempty"`
	PEPS        []pepsVariantsJSON     `json:"ablation_peps_variants,omitempty"`
	Materialize []materializeJSON      `json:"materialize_profile,omitempty"`
	Updates     []updatesJSON          `json:"update_stream,omitempty"`
	Stream      []streamJSON           `json:"stream,omitempty"`
	BitmapMem   []bitmapMemJSON        `json:"bitmap_mem,omitempty"`
	Shards      []shardsJSON           `json:"shards,omitempty"`
	OneShot     []oneshotJSON          `json:"oneshot,omitempty"`
	CacheServe  []cacheserveJSON       `json:"cacheserve,omitempty"`
	Serve       []serveJSON            `json:"serve,omitempty"`
	Extra       map[string]interface{} `json:"extra,omitempty"`
}

// machineJSON stamps each experiment record with the CPU budget the run
// actually had: medians taken under a different core count or GOMAXPROCS
// are not comparable, and the regression gate diffs these files across PRs.
// Every record also carries its reps count, so the methodology (best-of-N
// vs single sample) travels with the number.
type machineJSON struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

func machineStamp() machineJSON {
	return machineJSON{CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

// oneshotJSON is the cold one-shot comparison: the streaming block-iterator
// path versus materialize-first, same answer required, plus how much of the
// scan the TA threshold skipped.
type oneshotJSON struct {
	machineJSON
	UID                   int64 `json:"uid"`
	Prefs                 int   `json:"prefs"`
	K                     int   `json:"k"`
	StreamBestNs          int64 `json:"oneshot_stream_best_ns"`
	StreamP50Ns           int64 `json:"oneshot_stream_p50_ns"`
	StreamP99Ns           int64 `json:"oneshot_stream_p99_ns"`
	StreamAllocBytes      int64 `json:"oneshot_stream_alloc_bytes"`
	MaterializeBestNs     int64 `json:"oneshot_materialize_best_ns"`
	MaterializeP50Ns      int64 `json:"oneshot_materialize_p50_ns"`
	MaterializeP99Ns      int64 `json:"oneshot_materialize_p99_ns"`
	MaterializeAllocBytes int64 `json:"oneshot_materialize_alloc_bytes"`
	BlocksScanned         int   `json:"blocks_scanned"`
	BlocksTotal           int   `json:"blocks_total"`
	EarlyExit             bool  `json:"early_exit"`
	Matched               bool  `json:"matched"`
	Reps                  int   `json:"reps"`
}

// cacheserveJSON is the serving-tier comparison: the same Zipf-skewed
// profile-query sequence replayed uncached and through the result/plan
// cache, plus the single-flight burst and the churn-phase counter state.
type cacheserveJSON struct {
	machineJSON
	Queries       int                   `json:"queries"`
	DistinctUsers int                   `json:"distinct_users"`
	Workers       int                   `json:"workers"`
	K             int                   `json:"k"`
	ZipfS         float64               `json:"zipf_s"`
	TopShare      float64               `json:"top4_share"`
	OffP50Ns      int64                 `json:"cacheserve_off_p50_ns"`
	OffP99Ns      int64                 `json:"cacheserve_off_p99_ns"`
	OnP50Ns       int64                 `json:"cacheserve_on_p50_ns"`
	OnP99Ns       int64                 `json:"cacheserve_on_p99_ns"`
	MedianSpeedup float64               `json:"median_speedup"`
	HitRate       float64               `json:"hit_rate"`
	ServedRate    float64               `json:"served_rate"`
	DedupRequests int                   `json:"dedup_requests"`
	DedupLeaders  int                   `json:"dedup_leaders"`
	DedupFactor   float64               `json:"dedup_factor"`
	Cache         metrics.CacheSnapshot `json:"cache"`
	Routes        []routeStatJSON       `json:"routes,omitempty"`
	TraceQueries  int                   `json:"trace_queries"`
	TraceCoverMin float64               `json:"trace_coverage_min"`
	TraceCoverOK  bool                  `json:"trace_coverage_ok"`
	Matched       bool                  `json:"matched"`
	Reps          int                   `json:"reps"`
}

// serveJSON is the end-to-end HTTP serving record: the real internal/serve
// App booted in-process and driven over actual HTTP — closed-loop throughput
// with a mutation sidecar, then an open-loop burst against an admission gate.
// The shed rate is configuration-pinned (offered vs admitted rate), so it is
// machine-comparable even though the throughput numbers are not.
type serveJSON struct {
	machineJSON
	Sessions  int     `json:"sessions"`
	Queries   int     `json:"queries"`
	Workers   int     `json:"workers"`
	K         int     `json:"k"`
	OpsSec    float64 `json:"serve_ops_sec"`
	P50Ns     int64   `json:"serve_p50_ns"`
	P99Ns     int64   `json:"serve_p99_ns"`
	MutateOps int     `json:"mutate_ops"`
	HitRate   float64 `json:"hit_rate"`

	BurstOffered   int     `json:"burst_offered"`
	BurstOfferedPS float64 `json:"burst_offered_ops_sec"`
	AdmitRatePS    float64 `json:"admit_rate_ops_sec"`
	ShedRate       float64 `json:"serve_shed_rate"`
	GoodputPS      float64 `json:"serve_goodput_ops_sec"`
	BurstP99Ns     int64   `json:"serve_burst_p99_ns"`
	QueueP99Ns     int64   `json:"burst_queue_p99_ns"`
	SLONs          int64   `json:"slo_ns"`
	P99BudgetNs    int64   `json:"p99_budget_ns"`
	SLOOK          bool    `json:"slo_ok"`
	RetryAfterOK   bool    `json:"retry_after_ok"`
	Matched        bool    `json:"matched"`
	Reps           int     `json:"reps"`
}

// routeStatJSON is one route class's latency summary from the serving
// histograms (hit / miss / shared / bypass).
type routeStatJSON struct {
	Route string `json:"route"`
	Count int64  `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// shardsJSON is the partition-sharding worker sweep: per worker count, the
// warm pair-table build, cold profile materialization, and span-sharded
// PEPS timings, plus the machine's CPU budget (the hard ceiling on any
// speedup) and the sharded-vs-serial equivalence verdict.
type shardsJSON struct {
	machineJSON
	UID     int64            `json:"uid"`
	Prefs   int              `json:"prefs"`
	Pairs   int              `json:"pairs"`
	Spans   int              `json:"spans"`
	K       int              `json:"k"`
	Reps    int              `json:"reps"`
	Matched bool             `json:"matched"`
	Points  []shardPointJSON `json:"points"`
}

type shardPointJSON struct {
	Workers       int   `json:"workers"`
	PairBuildNs   int64 `json:"pair_build_ns"`
	MaterializeNs int64 `json:"materialize_ns"`
	PEPSNs        int64 `json:"peps_ns"`
}

// bitmapMemJSON is the per-user compressed-vs-dense bitmap footprint of the
// evaluator cache (bitset.SizeBytes rollup) plus the store-side masks.
type bitmapMemJSON struct {
	machineJSON
	UID         int64 `json:"uid"`
	Preds       int   `json:"preds"`
	DictEntries int   `json:"dict_entries"`
	Reps        int   `json:"reps"`

	CompressedBytes int64   `json:"compressed_bytes"`
	DenseBytes      int64   `json:"dense_bytes"`
	Ratio           float64 `json:"dense_over_compressed"`

	SparsePreds           int     `json:"sparse_preds"`
	SparseCompressedBytes int64   `json:"sparse_compressed_bytes"`
	SparseDenseBytes      int64   `json:"sparse_dense_bytes"`
	SparseRatio           float64 `json:"sparse_dense_over_compressed"`

	StoreMaskBytes int64 `json:"store_mask_bytes"`
}

type materializeJSON struct {
	machineJSON
	UID     int64 `json:"uid"`
	Prefs   int   `json:"prefs"`
	Queries int   `json:"queries"`
	BestNs  int64 `json:"best_ns"`
	MeanNs  int64 `json:"mean_ns"`
	Reps    int   `json:"reps"`
}

type updatesJSON struct {
	machineJSON
	UID         int64 `json:"uid"`
	Prefs       int   `json:"prefs"`
	Batches     int   `json:"batches"`
	OpsPerBatch int   `json:"ops_per_batch"`
	K           int   `json:"k"`
	Reps        int   `json:"reps"`
	// Maintenance cost alone: delta Sync vs MaterializeAll+BuildPairTable.
	MaintIncrementalNs   int64 `json:"maint_incremental_ns"`
	MaintRematerializeNs int64 `json:"maint_rematerialize_ns"`
	// Maintenance + the (byte-identical) top-k query per strategy.
	IncrementalNs   int64 `json:"incremental_ns"`
	RematerializeNs int64 `json:"rematerialize_ns"`
	TouchedRows     int   `json:"touched_rows"`
	ChangedPreds    int   `json:"changed_preds"`
	FullRebuilds    int   `json:"full_rebuilds"`
	Matched         bool  `json:"matched"`
}

// streamJSON is the sustained-stream write-path record: closed-loop group
// commit vs serial throughput, open-loop staleness percentiles, and the
// per-sync maintenance medians at base and 4x table scale the flatness
// criterion tracks. stream_ops_sec is higher-is-better — the regression
// gate treats it accordingly.
type streamJSON struct {
	machineJSON
	UID            int64   `json:"uid"`
	Prefs          int     `json:"prefs"`
	K              int     `json:"k"`
	Reps           int     `json:"reps"`
	Writers        int     `json:"writers"`
	OpsPerWriter   int     `json:"ops_per_writer"`
	Readers        int     `json:"readers"`
	GroupOpsSec    float64 `json:"stream_ops_sec"`
	SerialOpsSec   float64 `json:"stream_serial_ops_sec"`
	Speedup        float64 `json:"stream_speedup"`
	OfferedOpsSec  float64 `json:"offered_ops_sec"`
	StreamOps      int     `json:"stream_ops"`
	Syncs          int     `json:"syncs"`
	P50StalenessNs int64   `json:"stream_p50_staleness_ns"`
	P99StalenessNs int64   `json:"stream_p99_staleness_ns"`
	SyncBatches    int     `json:"sync_batches"`
	OpsPerSync     int     `json:"ops_per_sync"`
	SyncMedianNs   int64   `json:"stream_sync_median_ns"`
	SyncMedian4xNs int64   `json:"stream_sync_median_4x_ns"`
	FlatnessRatio  float64 `json:"sync_flatness_ratio"`
	Matched        bool    `json:"matched"`
}

type fig39JSON struct {
	machineJSON
	UID           int64            `json:"uid"`
	PairBuildNs   int64            `json:"pair_build_ns"`
	Points        []fig39PointJSON `json:"points"`
	ProfileCap    int              `json:"profile_cap"`
	RepsPerSample int              `json:"reps_per_sample"`
}

type fig39PointJSON struct {
	K          int   `json:"k"`
	CompleteNs int64 `json:"complete_ns"`
	ApproxNs   int64 `json:"approximate_ns"`
	QuantNs    int64 `json:"quant_only_ns"`
}

type pairCacheJSON struct {
	machineJSON
	UID        int64 `json:"uid"`
	Pairs      int   `json:"pairs"`
	CachedNs   int64 `json:"cached_ns"`
	SQLNs      int64 `json:"sql_ns"`
	SQLQueries int   `json:"sql_queries"`
	Reps       int   `json:"reps"`
}

type pepsVariantsJSON struct {
	machineJSON
	UID        int64   `json:"uid"`
	K          int     `json:"k"`
	CompleteNs int64   `json:"complete_ns"`
	ApproxNs   int64   `json:"approximate_ns"`
	Recall     float64 `json:"recall"`
	Reps       int     `json:"reps"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids (table10,table11,table12,fig13,fig17,fig18,fig26,fig28,fig29,fig32,fig35,fig37,fig39,ablation,materialize,updates,stream,bitmapmem,shards,oneshot,cacheserve,serve) or 'all'")
		papers  = flag.Int("papers", 4000, "number of papers in the synthetic network")
		authors = flag.Int("authors", 1200, "number of authors")
		venues  = flag.Int("venues", 40, "number of venues")
		seed    = flag.Int64("seed", 42, "generator seed")
		cap_    = flag.Int("cap", 20, "profile cap for combination experiments (0 = full profile)")
		k       = flag.Int("k", 200, "K for Top-K experiments")
		runs    = flag.Int("runs", 100, "seeded runs for the Bias-Random scatter")
		cites   = flag.Float64("cites", 3, "mean citations per paper")
		zipf    = flag.Float64("zipf", 1.3, "venue/author popularity skew (>1)")
		bjson   = flag.String("benchjson", "BENCH_results.json", "write timed experiments to this JSON file (empty = off)")
		dbgAddr = flag.String("debug.addr", "", "serve /metrics, /debug/slowlog, /debug/trace and /debug/pprof on this address; the process stays alive after the experiments finish (use -exp none for a pure ops server)")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.NumPapers = *papers
	cfg.NumAuthors = *authors
	cfg.NumVenues = *venues
	cfg.Seed = *seed
	cfg.MeanCitations = *cites
	cfg.ZipfS = *zipf

	fmt.Printf("# HYPRE experiment harness: %d papers, %d authors, %d venues (seed %d)\n",
		*papers, *authors, *venues, *seed)
	lab, err := experiments.NewLab(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# exemplar users: rich uid=%d (%d prefs), modest uid=%d (%d prefs)\n\n",
		lab.Rich, lab.Prefs.CountByUser()[lab.Rich],
		lab.Modest, lab.Prefs.CountByUser()[lab.Modest])

	if *dbgAddr != "" {
		if err := startDebugServer(*dbgAddr, lab); err != nil {
			fatal(err)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(id string) bool { return all || want[id] }
	out := os.Stdout
	report := benchReport{Config: map[string]int64{
		"papers":  int64(*papers),
		"authors": int64(*authors),
		"venues":  int64(*venues),
		"seed":    *seed,
		"cap":     int64(*cap_),
		"k":       int64(*k),
	}}

	if run("table10") {
		experiments.RunTable10(lab).Render(out)
		fmt.Println()
	}
	if run("table11") {
		r, err := experiments.RunTable11(lab)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Println()
	}
	if run("table12") {
		r, err := experiments.RunTable12(lab, lab.Modest)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		fmt.Println()
	}
	if run("fig13") {
		experiments.RunFig13(7, 50000).Render(out)
		fmt.Println()
	}
	if run("fig17") {
		experiments.RunFig17(lab).Render(out)
		fmt.Println()
	}
	if run("fig18") {
		for _, uid := range lab.Users() {
			r, err := experiments.RunFig18Utility(lab, uid, *cap_)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
			r.RenderTuplesIntensity(out)
			fmt.Println()
		}
	}
	if run("fig26") {
		for _, uid := range lab.Users() {
			experiments.RunFig26PrefGrowth(lab, uid).Render(out)
		}
		fmt.Println()
	}
	if run("fig28") {
		for _, uid := range lab.Users() {
			r, err := experiments.RunFig28Coverage(lab, uid)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
		}
		fmt.Println()
	}
	if run("fig29") {
		for _, uid := range lab.Users() {
			r, err := experiments.RunFig29CombineTwo(lab, uid, *cap_)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
		}
		fmt.Println()
	}
	if run("fig32") {
		for _, uid := range lab.Users() {
			r, err := experiments.RunFig32PartiallyCombineAll(lab, uid, *cap_)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
		}
		fmt.Println()
	}
	if run("fig35") {
		for _, uid := range lab.Users() {
			r, err := experiments.RunFig35BiasRandom(lab, uid, *cap_, *runs)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
		}
		fmt.Println()
	}
	if run("fig37") {
		for _, uid := range lab.Users() {
			r, err := experiments.RunFig37PEPSvsTA(lab, uid, *k, *cap_)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
		}
		fmt.Println()
	}
	if run("fig39") {
		const fig39Reps = 3
		ks := []int{10, 100, 200, 300, 400, 500, 600, 700, 800}
		for _, uid := range lab.Users() {
			r, err := experiments.RunFig39PEPSTime(lab, uid, ks, fig39Reps, *cap_)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
			fj := fig39JSON{
				machineJSON:   machineStamp(),
				UID:           r.UID,
				PairBuildNs:   r.PairBuildTime.Nanoseconds(),
				ProfileCap:    *cap_,
				RepsPerSample: fig39Reps,
			}
			for _, p := range r.Points {
				fj.Points = append(fj.Points, fig39PointJSON{
					K:          p.K,
					CompleteNs: p.CompleteT.Nanoseconds(),
					ApproxNs:   p.ApproxT.Nanoseconds(),
					QuantNs:    p.QuantOnlyT.Nanoseconds(),
				})
			}
			report.Fig39 = append(report.Fig39, fj)
		}
		fmt.Println()
	}
	if run("ablation") {
		experiments.RunAblationComposition().Render(out)
		fmt.Println()
		r2, err := experiments.RunAblationPEPS(lab, lab.Modest, *k, *cap_)
		if err != nil {
			fatal(err)
		}
		r2.Render(out)
		fmt.Println()
		report.PEPS = append(report.PEPS, pepsVariantsJSON{
			machineJSON: machineStamp(),
			UID:         r2.UID,
			K:           r2.K,
			CompleteNs:  r2.CompleteTime.Nanoseconds(),
			ApproxNs:    r2.ApproxTime.Nanoseconds(),
			Recall:      r2.Recall,
			Reps:        1,
		})
		r3, err := experiments.RunAblationPairCache(lab, lab.Modest, min(*cap_, 12))
		if err != nil {
			fatal(err)
		}
		r3.Render(out)
		fmt.Println()
		report.PairCache = append(report.PairCache, pairCacheJSON{
			machineJSON: machineStamp(),
			UID:         r3.UID,
			Pairs:       r3.Pairs,
			CachedNs:    r3.CachedTime.Nanoseconds(),
			SQLNs:       r3.SQLTime.Nanoseconds(),
			SQLQueries:  r3.SQLQueries,
			Reps:        1,
		})
	}

	if run("updates") {
		const (
			updBatches = 8
			updOps     = 64
			// The stream runs over a seeded private clone, so repeat runs
			// are independent and deterministic; keep the one with the
			// fastest incremental maintenance — single-pass samples spike
			// on busy machines and the bench-regression gate diffs this
			// figure across PRs.
			updReps = 3
		)
		for _, uid := range lab.Users() {
			var r *experiments.UpdateStreamResult
			for rep := 0; rep < updReps; rep++ {
				cand, err := experiments.RunUpdateStream(lab, uid, updBatches, updOps, *k, *cap_)
				if err != nil {
					fatal(err)
				}
				if !cand.Matched {
					fatal(fmt.Errorf("update stream uid=%d: incremental ranking diverged from rematerialization", cand.UID))
				}
				if r == nil || cand.MaintIncremental < r.MaintIncremental {
					r = cand
				}
			}
			r.Render(out)
			report.Updates = append(report.Updates, updatesJSON{
				machineJSON:          machineStamp(),
				Reps:                 updReps,
				UID:                  r.UID,
				Prefs:                r.ProfileSize,
				Batches:              r.Batches,
				OpsPerBatch:          r.OpsPerBatch,
				K:                    r.K,
				MaintIncrementalNs:   r.MaintIncremental.Nanoseconds(),
				MaintRematerializeNs: r.MaintRematerialize.Nanoseconds(),
				IncrementalNs:        r.IncrementalTotal.Nanoseconds(),
				RematerializeNs:      r.RematerializeTotal.Nanoseconds(),
				TouchedRows:          r.TouchedRows,
				ChangedPreds:         r.ChangedPreds,
				FullRebuilds:         r.FullRebuilds,
				Matched:              r.Matched,
			})
		}
		fmt.Println()
	}

	if run("stream") {
		const (
			strWriters   = 8
			strPerWriter = 400
			strOpsPerSec = 4000
			strOps       = 1200
			// Best-of-reps per axis: timing noise on a shared machine is
			// one-sided (a GC pause or a scheduler hiccup only ever adds
			// time), so the minimum is the best estimator of the true cost
			// on each axis independently. The record keeps the throughput
			// pair and staleness from the best-GroupWall rep, then overlays
			// the flatness triple from the rep whose sync medians were the
			// cleanest — the two phases run on separate stores, so mixing
			// reps cannot make the record internally inconsistent.
			strReps = 3
		)
		var r, flat *experiments.StreamResult
		for rep := 0; rep < strReps; rep++ {
			cand, err := experiments.RunStream(lab, lab.Rich, strWriters, strPerWriter, strOpsPerSec, strOps, *k, *cap_)
			if err != nil {
				fatal(err)
			}
			if !cand.Matched {
				fatal(fmt.Errorf("stream uid=%d: group-commit store diverged from the serial twin", cand.UID))
			}
			if r == nil || cand.GroupWall < r.GroupWall {
				r = cand
			}
			if flat == nil || cand.FlatnessRatio < flat.FlatnessRatio {
				flat = cand
			}
		}
		r.SyncMedianBase, r.SyncMedian4x, r.FlatnessRatio = flat.SyncMedianBase, flat.SyncMedian4x, flat.FlatnessRatio
		r.Render(out)
		fmt.Println()
		report.Stream = append(report.Stream, streamJSON{
			machineJSON:    machineStamp(),
			Reps:           strReps,
			UID:            r.UID,
			Prefs:          r.ProfileSize,
			K:              r.K,
			Writers:        r.Writers,
			OpsPerWriter:   r.PerWriter,
			Readers:        r.Readers,
			GroupOpsSec:    r.GroupOpsPerSec,
			SerialOpsSec:   r.SerialOpsPerSec,
			Speedup:        r.Speedup,
			OfferedOpsSec:  r.OfferedOpsPerSec,
			StreamOps:      r.StreamOps,
			Syncs:          r.Syncs,
			P50StalenessNs: r.P50Staleness.Nanoseconds(),
			P99StalenessNs: r.P99Staleness.Nanoseconds(),
			SyncBatches:    r.SyncBatches,
			OpsPerSync:     r.OpsPerSync,
			SyncMedianNs:   r.SyncMedianBase.Nanoseconds(),
			SyncMedian4xNs: r.SyncMedian4x.Nanoseconds(),
			FlatnessRatio:  r.FlatnessRatio,
			Matched:        r.Matched,
		})
	}

	if run("bitmapmem") {
		for _, uid := range lab.Users() {
			r, err := experiments.RunBitmapMem(lab, uid)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
			report.BitmapMem = append(report.BitmapMem, bitmapMemJSON{
				machineJSON:           machineStamp(),
				Reps:                  1,
				UID:                   r.UID,
				Preds:                 r.Preds,
				DictEntries:           r.DictEntries,
				CompressedBytes:       r.CompressedBytes,
				DenseBytes:            r.DenseBytes,
				Ratio:                 r.Ratio(),
				SparsePreds:           r.SparsePreds,
				SparseCompressedBytes: r.SparseCompressedBytes,
				SparseDenseBytes:      r.SparseDenseBytes,
				SparseRatio:           r.SparseRatio(),
				StoreMaskBytes:        r.StoreMaskBytes,
			})
		}
		fmt.Println()
	}

	if run("shards") {
		const shardReps = 5
		workerCounts := []int{1, 2, 4, 8}
		for _, uid := range lab.Users() {
			// Full profile (no cap): the sharded sweep is about scaling the
			// pair-count and scan fan-out, so give it the widest real
			// workload the lab has.
			r, err := experiments.RunShards(lab, uid, workerCounts, *k, 0, shardReps)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
			sj := shardsJSON{
				machineJSON: machineStamp(),
				UID:         r.UID,
				Prefs:       r.Prefs,
				Pairs:       r.Pairs,
				Spans:       r.Spans,
				K:           r.K,
				Reps:        r.Reps,
				Matched:     r.Matched,
			}
			for _, p := range r.Points {
				sj.Points = append(sj.Points, shardPointJSON{
					Workers:       p.Workers,
					PairBuildNs:   p.PairBuild.Nanoseconds(),
					MaterializeNs: p.Materialize.Nanoseconds(),
					PEPSNs:        p.PEPS.Nanoseconds(),
				})
			}
			report.Shards = append(report.Shards, sj)
			if !r.Matched {
				fatal(fmt.Errorf("shards uid=%d: sharded evaluation diverged from the serial path", r.UID))
			}
		}
		fmt.Println()
	}

	if run("materialize") {
		const matReps = 5
		for _, uid := range lab.Users() {
			r, err := experiments.RunMaterializeBench(lab, uid, matReps)
			if err != nil {
				fatal(err)
			}
			r.Render(out)
			report.Materialize = append(report.Materialize, materializeJSON{
				machineJSON: machineStamp(),
				UID:         r.UID,
				Prefs:       r.Prefs,
				Queries:     r.Queries,
				BestNs:      r.Best.Nanoseconds(),
				MeanNs:      r.Mean.Nanoseconds(),
				Reps:        r.Reps,
			})
		}
		fmt.Println()
	}

	if run("oneshot") {
		const oneShotReps = 5
		ks := []int{10, *k}
		if *k == 10 {
			ks = ks[:1]
		}
		for _, uid := range lab.Users() {
			for _, kk := range ks {
				// Full profile (cap 0): the streaming path's win is widest
				// where materialize-first has the most bitmaps to build, and
				// the experiment verifies answer identity either way. The
				// small-k point is where the threshold early-exit matters.
				r, err := experiments.RunOneShotBench(lab, uid, kk, 0, oneShotReps)
				if err != nil {
					fatal(err)
				}
				r.Render(out)
				report.OneShot = append(report.OneShot, oneshotJSON{
					machineJSON:           machineStamp(),
					UID:                   r.UID,
					Prefs:                 r.Prefs,
					K:                     r.K,
					StreamBestNs:          r.StreamBest.Nanoseconds(),
					StreamP50Ns:           r.StreamP50.Nanoseconds(),
					StreamP99Ns:           r.StreamP99.Nanoseconds(),
					StreamAllocBytes:      int64(r.StreamAlloc),
					MaterializeBestNs:     r.MaterializeBest.Nanoseconds(),
					MaterializeP50Ns:      r.MaterializeP50.Nanoseconds(),
					MaterializeP99Ns:      r.MaterializeP99.Nanoseconds(),
					MaterializeAllocBytes: int64(r.MaterializeAlloc),
					BlocksScanned:         r.Stats.BlocksScanned,
					BlocksTotal:           r.Stats.BlocksTotal,
					EarlyExit:             r.Stats.EarlyExit,
					Matched:               r.Matched,
					Reps:                  r.Reps,
				})
			}
		}
		fmt.Println()
	}

	if run("cacheserve") {
		csCfg := experiments.DefaultCacheServeConfig()
		csCfg.K = min(*k, 50)
		r, err := experiments.RunCacheServe(lab, csCfg)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		if !r.Matched {
			fatal(fmt.Errorf("cacheserve: cached answers diverged from uncached evaluation"))
		}
		if !r.TraceCoverageOK {
			fatal(fmt.Errorf("cacheserve: trace span coverage out of bounds (min %.3f over %d traced queries)",
				r.TraceCoverageMin, r.TraceQueries))
		}
		routes := make([]routeStatJSON, 0, len(r.Routes))
		for _, rs := range r.Routes {
			routes = append(routes, routeStatJSON{
				Route: rs.Route,
				Count: rs.Count,
				P50Ns: rs.P50.Nanoseconds(),
				P99Ns: rs.P99.Nanoseconds(),
			})
		}
		report.CacheServe = append(report.CacheServe, cacheserveJSON{
			machineJSON:   machineStamp(),
			Queries:       r.Queries,
			DistinctUsers: r.Distinct,
			Workers:       r.Workers,
			K:             r.K,
			ZipfS:         r.ZipfS,
			TopShare:      r.TopShare,
			OffP50Ns:      r.OffP50.Nanoseconds(),
			OffP99Ns:      r.OffP99.Nanoseconds(),
			OnP50Ns:       r.OnP50.Nanoseconds(),
			OnP99Ns:       r.OnP99.Nanoseconds(),
			MedianSpeedup: r.MedianSpeedup,
			HitRate:       r.HitRate,
			ServedRate:    r.ServedRate,
			DedupRequests: r.DedupRequests,
			DedupLeaders:  r.DedupLeaders,
			DedupFactor:   r.DedupFactor,
			Cache:         r.Snapshot,
			Routes:        routes,
			TraceQueries:  r.TraceQueries,
			TraceCoverMin: r.TraceCoverageMin,
			TraceCoverOK:  r.TraceCoverageOK,
			Matched:       r.Matched,
			Reps:          r.Reps,
		})
		fmt.Println()
	}

	if run("serve") {
		svCfg := experiments.DefaultServeConfig()
		svCfg.K = min(*k, 50)
		r, err := experiments.RunServe(lab, svCfg)
		if err != nil {
			fatal(err)
		}
		r.Render(out)
		if !r.Matched {
			fatal(fmt.Errorf("serve: served answers diverged from uncached evaluation"))
		}
		if !r.SLOOK {
			fatal(fmt.Errorf("serve: admitted burst p99 %v blew the %v budget", r.BurstP99, r.P99Budget))
		}
		if !r.RetryAfterOK {
			fatal(fmt.Errorf("serve: burst shed %d requests but Retry-After hints were missing", r.BurstShed))
		}
		report.Serve = append(report.Serve, serveJSON{
			machineJSON:    machineStamp(),
			Sessions:       r.Sessions,
			Queries:        r.Queries,
			Workers:        r.Workers,
			K:              r.K,
			OpsSec:         r.OpsSec,
			P50Ns:          r.P50.Nanoseconds(),
			P99Ns:          r.P99.Nanoseconds(),
			MutateOps:      r.MutateOps,
			HitRate:        r.HitRate,
			BurstOffered:   r.BurstOffered,
			BurstOfferedPS: r.BurstOfferedPS,
			AdmitRatePS:    r.AdmitRate,
			ShedRate:       r.ShedRate,
			GoodputPS:      r.GoodputPS,
			BurstP99Ns:     r.BurstP99.Nanoseconds(),
			QueueP99Ns:     r.QueueP99.Nanoseconds(),
			SLONs:          r.SLO.Nanoseconds(),
			P99BudgetNs:    r.P99Budget.Nanoseconds(),
			SLOOK:          r.SLOOK,
			RetryAfterOK:   r.RetryAfterOK,
			Matched:        r.Matched,
			Reps:           r.Reps,
		})
		fmt.Println()
	}

	if *bjson != "" && (len(report.Fig39) > 0 || len(report.PairCache) > 0 || len(report.PEPS) > 0 || len(report.Materialize) > 0 || len(report.Updates) > 0 || len(report.Stream) > 0 || len(report.BitmapMem) > 0 || len(report.Shards) > 0 || len(report.OneShot) > 0 || len(report.CacheServe) > 0 || len(report.Serve) > 0) {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*bjson, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *bjson)
	}

	if *dbgAddr != "" {
		fmt.Println("# experiments done; debug server still serving (ctrl-c to exit)")
		select {}
	}
}

// startDebugServer exposes the ops surface over a live serving stack: a
// cache.Server on the lab's store with a registry and slow log attached,
// plus a trace runner that serves /debug/trace?query=<uid>&k=N by running
// that user's profile through the traced serve path.
func startDebugServer(addr string, lab *experiments.Lab) error {
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(time.Millisecond, 128)
	srv := cache.NewServer(lab.Evaluator(), cache.Config{Registry: reg, SlowLog: slow})
	runner := func(query string, k int) (*obs.Trace, error) {
		uid, err := strconv.ParseInt(strings.TrimSpace(query), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query must be a uid (try %d or %d): %v", lab.Rich, lab.Modest, err)
		}
		prof := lab.ProfileFor(uid, 0)
		if len(prof) == 0 {
			return nil, fmt.Errorf("uid %d has no positive profile", uid)
		}
		tr := obs.NewTrace()
		if _, _, err := srv.TopKTraced(prof, k, tr); err != nil {
			return nil, err
		}
		return tr, nil
	}
	mux := obs.NewDebugMux(obs.DebugOptions{Registry: reg, SlowLog: slow, Trace: runner})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("# debug server on http://%s/ (metrics, debug/slowlog, debug/trace?query=%d&k=10, debug/pprof)\n",
		ln.Addr(), lab.Rich)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner: debug server:", err)
		}
	}()
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
