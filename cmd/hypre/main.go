// Command hypre is a small CLI around the HYPRE system: it generates the
// synthetic DBLP workload, builds every user's preference graph, and
// answers personalized Top-K queries.
//
// Subcommands:
//
//	hypre stats                      dataset and graph statistics
//	hypre profile -uid N [-n 20]     a user's converted preference profile
//	hypre enhance -uid N [-n 10]     the §4.6 rewritten WHERE clause
//	hypre topk -uid N [-k 10]        PEPS Top-K vs the TA baseline
//	hypre cypher -q "START ..."      run a Cypher query on the graph store
//	hypre demo                       a guided end-to-end walk-through
package main

import (
	"flag"
	"fmt"
	"os"

	"hypre/internal/core"
	"hypre/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		papers  = fs.Int("papers", 2000, "papers in the synthetic network")
		authors = fs.Int("authors", 600, "authors")
		seed    = fs.Int64("seed", 42, "generator seed")
		uid     = fs.Int64("uid", -1, "user id (author id); -1 picks the busiest user")
		k       = fs.Int("k", 10, "result count for topk")
		n       = fs.Int("n", 20, "preference count to display")
		query   = fs.String("q", "", "Cypher query text")
	)
	fs.Parse(os.Args[2:])

	cfg := workload.DefaultConfig()
	cfg.NumPapers = *papers
	cfg.NumAuthors = *authors
	cfg.Seed = *seed

	sys, prefs, err := core.NewSystemWithWorkload(cfg)
	if err != nil {
		fatal(err)
	}
	if *uid < 0 {
		*uid, _ = prefs.PickUsers(170, 50)
	}

	switch cmd {
	case "stats":
		fmt.Println("dataset:")
		for _, s := range sys.DB.Stats() {
			fmt.Printf("  %-14s arity=%d cardinality=%d\n", s.Name, s.Arity, s.Cardinality)
		}
		st := sys.Graph.GraphStats()
		fmt.Printf("preference graph: %d nodes, %d edges (%d PREFERS, %d CYCLE, %d DISCARD)\n",
			st.Nodes, st.Edges, st.Prefers, st.Cycles, st.Discards)
		fmt.Printf("users with preferences: %d\n", len(prefs.Users))

	case "profile":
		prof := sys.Profile(*uid)
		fmt.Printf("profile of uid=%d (%d positive preferences):\n", *uid, len(prof))
		for i, p := range prof {
			if i >= *n {
				fmt.Printf("  ... %d more\n", len(prof)-i)
				break
			}
			fmt.Printf("  %8.4f  %s\n", p.Intensity, p.Pred)
		}

	case "enhance":
		text, intensity := sys.EnhancedQuery(*uid, *n)
		fmt.Printf("SELECT * FROM dblp JOIN dblp_author ON dblp.pid = dblp_author.pid\nWHERE %s;\n", text)
		fmt.Printf("-- combined intensity %.4f\n", intensity)

	case "topk":
		top, err := sys.TopK(*uid, *k, core.Complete)
		if err != nil {
			fatal(err)
		}
		base, err := sys.TopKBaseline(*uid, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Top-%d for uid=%d (PEPS | TA baseline):\n", *k, *uid)
		for i := 0; i < *k; i++ {
			left, right := "-", "-"
			if i < len(top) {
				row, _ := sys.TupleByKey("dblp", "pid", top[i].PID)
				left = fmt.Sprintf("%.4f %s", top[i].Intensity, core.DescribeTuple(row, "pid", "venue", "year"))
			}
			if i < len(base) {
				right = fmt.Sprintf("%.4f pid=%d", base[i].Intensity, base[i].PID)
			}
			fmt.Printf("%3d. %-48s | %s\n", i+1, left, right)
		}

	case "cypher":
		if *query == "" {
			fatal(fmt.Errorf("cypher requires -q"))
		}
		res, err := sys.Graph.Store().Query(*query)
		if err != nil {
			fatal(err)
		}
		for _, c := range res.Columns {
			fmt.Printf("%-28s", c)
		}
		fmt.Println()
		for _, row := range res.Rows {
			for _, v := range row {
				fmt.Printf("%-28s", v.AsString())
			}
			fmt.Println()
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))

	case "demo":
		demo(sys, prefs, *uid, *k)

	default:
		usage()
		os.Exit(2)
	}
}

func demo(sys *core.System, prefs *workload.Prefs, uid int64, k int) {
	fmt.Printf("== HYPRE demo: personalized paper search for uid=%d ==\n\n", uid)
	prof := sys.Profile(uid)
	fmt.Printf("1. Profile: %d usable preferences after qualitative conversion.\n", len(prof))
	show := len(prof)
	if show > 5 {
		show = 5
	}
	for _, p := range prof[:show] {
		fmt.Printf("   %8.4f  %s\n", p.Intensity, p.Pred)
	}
	qt, ql := prefs.UserPrefs(uid)
	fmt.Printf("\n2. The user originally supplied %d quantitative and %d qualitative preferences;\n", len(qt), len(ql))
	fmt.Printf("   intensity propagation (Eq 4.1/4.2) converted the qualitative ones into usable scores.\n")

	text, intensity := sys.EnhancedQuery(uid, 6)
	fmt.Printf("\n3. Preference-enhanced query (mixed AND/OR semantics, intensity %.4f):\n   WHERE %s\n", intensity, text)

	top, err := sys.TopK(uid, k, core.Complete)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n4. Top-%d papers by combined intensity (PEPS):\n", k)
	for i, tu := range top {
		row, _ := sys.TupleByKey("dblp", "pid", tu.PID)
		fmt.Printf("   %2d. %.4f  %s\n", i+1, tu.Intensity, core.DescribeTuple(row, "venue", "year", "title"))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hypre <stats|profile|enhance|topk|cypher|demo> [flags]
run "hypre <subcommand> -h" for flags`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hypre:", err)
	os.Exit(1)
}
