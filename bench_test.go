// Package main's bench_test.go is the benchmark harness of deliverable (d):
// one testing.B benchmark per table and figure of the dissertation's
// evaluation, each delegating to the internal/experiments runner that
// regenerates the corresponding rows/series (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured notes).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package main

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"hypre/internal/cache"
	"hypre/internal/combine"
	"hypre/internal/experiments"
	"hypre/internal/obs"
	"hypre/internal/topk"
	"hypre/internal/workload"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchErr  error
)

// benchSetup builds the shared workload once; its cost is excluded from
// every benchmark via b.ResetTimer.
func benchSetup(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		cfg := workload.DefaultConfig()
		cfg.NumPapers = 2000
		cfg.NumAuthors = 600
		cfg.NumVenues = 25
		benchLab, benchErr = experiments.NewLab(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchLab
}

const benchProfileCap = 16

func BenchmarkTable10_DatasetStats(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable10(l)
		if len(r.Relations) == 0 {
			b.Fatal("no relations")
		}
	}
}

func BenchmarkTable11_InsertionTime(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable11(l)
		if err != nil {
			b.Fatal(err)
		}
		if r.QuantCount == 0 {
			b.Fatal("no insertions")
		}
	}
}

func BenchmarkTable12_DefaultValues(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable12(l, l.Modest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13_NodeInsertion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig13(5, 20000)
		if len(r.Points) != 5 {
			b.Fatal("bad points")
		}
	}
}

func BenchmarkFig17_PrefDistribution(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig17(l)
		if r.Users == 0 {
			b.Fatal("no users")
		}
	}
}

func BenchmarkFig18_19_Utility(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig18Utility(l, l.Modest, benchProfileCap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20_25_TuplesIntensity(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig18Utility(l, l.Rich, benchProfileCap)
		if err != nil {
			b.Fatal(err)
		}
		r.RenderTuplesIntensity(io.Discard)
	}
}

func BenchmarkFig26_27_PrefGrowth(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig26PrefGrowth(l, l.Rich)
		if r.FromGraph == 0 {
			b.Fatal("no growth data")
		}
	}
}

func BenchmarkFig28_Coverage(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig28Coverage(l, l.Modest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig29_31_CombineTwo(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig29CombineTwo(l, l.Modest, benchProfileCap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig32_34_PartiallyCombineAll(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig32PartiallyCombineAll(l, l.Modest, benchProfileCap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig35_36_BiasRandom(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig35BiasRandom(l, l.Modest, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig37_38_PEPSvsTA(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig37PEPSvsTA(l, l.Modest, 100, benchProfileCap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig39_40_PEPSTime(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig39PEPSTime(l, l.Modest,
			[]int{10, 100, 400, 800}, 1, benchProfileCap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaterializeProfile is the cold-cache predicate materialization
// cost: a fresh evaluator per iteration, so every profile predicate runs
// one real scan through the columnar store and the parallel bulk path —
// the Lab-setup cost every figure pays before any set algebra.
func BenchmarkMaterializeProfile(b *testing.B) {
	l := benchSetup(b)
	for _, tc := range []struct {
		name string
		uid  int64
	}{{"Modest", l.Modest}, {"Rich", l.Rich}} {
		b.Run(tc.name, func(b *testing.B) {
			prefs := l.ProfileFor(tc.uid, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := l.Evaluator()
				if err := ev.MaterializeAll(prefs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOneShotStreaming answers a cold top-k profile query through the
// streaming block-iterator path: a fresh evaluator every iteration, no
// bitmaps materialized, TA threshold early-exit live. Its counterpart
// BenchmarkOneShotMaterialized is the same query answered materialize-first;
// the pair is the one-shot visitor cost the oneshot experiment tracks.
func BenchmarkOneShotStreaming(b *testing.B) {
	l := benchSetup(b)
	for _, tc := range []struct {
		name string
		uid  int64
	}{{"Modest", l.Modest}, {"Rich", l.Rich}} {
		b.Run(tc.name, func(b *testing.B) {
			prefs := l.ProfileFor(tc.uid, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := l.Evaluator()
				out, st, err := topk.EvaluateOneShot(ev, prefs, 100)
				if err != nil {
					b.Fatal(err)
				}
				if !st.Streamed {
					b.Fatal("cold query did not take the streaming path")
				}
				if len(out) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkOneShotMaterialized is the materialize-first answer to the same
// cold query: build every predicate bitmap, then TA over sorted lists.
func BenchmarkOneShotMaterialized(b *testing.B) {
	l := benchSetup(b)
	for _, tc := range []struct {
		name string
		uid  int64
	}{{"Modest", l.Modest}, {"Rich", l.Rich}} {
		b.Run(tc.name, func(b *testing.B) {
			prefs := l.ProfileFor(tc.uid, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := l.Evaluator()
				if err := ev.MaterializeAll(prefs); err != nil {
					b.Fatal(err)
				}
				lists, err := topk.BuildLists(ev, prefs)
				if err != nil {
					b.Fatal(err)
				}
				if out := lists.TA(100); len(out) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkUpdateStream is the online-mutation cycle: per iteration, a
// private clone of the workload absorbs seeded insert/update/delete
// batches, and after each batch the top-k query is answered both through
// incremental delta maintenance and through rematerialize-from-scratch
// (the runner asserts the rankings stay byte-identical).
func BenchmarkUpdateStream(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunUpdateStream(l, l.Modest, 4, 32, 100, benchProfileCap)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Matched {
			b.Fatal("incremental ranking diverged from rematerialization")
		}
	}
}

// BenchmarkCacheServe replays the Zipf serving workload through the
// result/plan cache end to end (off phase, on phase, single-flight burst,
// churn under the maintainer) and fails on any cached-vs-uncached answer
// divergence.
func BenchmarkCacheServe(b *testing.B) {
	l := benchSetup(b)
	cfg := experiments.DefaultCacheServeConfig()
	cfg.Queries = 120
	cfg.ChurnBatches = 2
	cfg.ChurnOps = 24
	cfg.Reps = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCacheServe(l, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Matched {
			b.Fatal("cached answers diverged from uncached evaluation")
		}
	}
}

// BenchmarkCacheServeHitPath prices the observability tier on the hottest
// serving route — a warm result-cache hit — in three configurations: plain
// (nothing attached: the zero-overhead-when-disabled claim, no clock reads
// on the serve path), histogram (registry + slow log attached, requests
// untraced), and traced (a fresh Trace per request, full span capture).
func BenchmarkCacheServeHitPath(b *testing.B) {
	l := benchSetup(b)
	prof := l.ProfileFor(l.Modest, benchProfileCap)
	run := func(b *testing.B, cfg cache.Config, traced bool) {
		srv := cache.NewServer(l.Evaluator(), cfg)
		if _, _, err := srv.TopK(prof, 10); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var tr *obs.Trace
			if traced {
				tr = obs.NewTrace()
			}
			_, out, err := srv.TopKTraced(prof, 10, tr)
			if err != nil {
				b.Fatal(err)
			}
			if out != cache.Hit {
				b.Fatalf("outcome %v, want Hit", out)
			}
		}
	}
	b.Run("plain", func(b *testing.B) {
		run(b, cache.Config{}, false)
	})
	b.Run("histogram", func(b *testing.B) {
		run(b, cache.Config{
			Registry: obs.NewRegistry(),
			SlowLog:  obs.NewSlowLog(time.Second, 32),
		}, false)
	})
	b.Run("traced", func(b *testing.B) {
		run(b, cache.Config{
			Registry: obs.NewRegistry(),
			SlowLog:  obs.NewSlowLog(time.Second, 32),
		}, true)
	})
}

// shardedBenchWorkers is the shard-count sweep for the partition-sharded
// hot paths; speedup beyond 1 worker is bounded by the machine's cores.
var shardedBenchWorkers = []int{1, 2, 4, 8}

// BenchmarkShardedPairBuild times the (span × anchor)-sharded pair-table
// sweep over a warm evaluator cache, across worker counts, on the rich
// user's full profile — the pure set-algebra phase the partition layer
// parallelizes.
func BenchmarkShardedPairBuild(b *testing.B) {
	l := benchSetup(b)
	prefs := l.ProfileFor(l.Rich, 0)
	for _, w := range shardedBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ev := l.Evaluator()
			ev.Workers = w
			if err := ev.MaterializeAll(prefs); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := combine.BuildPairTable(prefs, ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedPEPS times span-sharded PEPS across worker counts on the
// rich user's full profile (single-span at this workload size: the sweep
// tracks the serial-degeneration overhead, which must stay at parity).
func BenchmarkShardedPEPS(b *testing.B) {
	l := benchSetup(b)
	prefs := l.ProfileFor(l.Rich, benchProfileCap)
	for _, w := range shardedBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ev := l.Evaluator()
			ev.Workers = w
			pt, err := combine.BuildPairTable(prefs, ev)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := combine.PEPSSharded(prefs, pt, ev, 200, combine.Complete); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation_Composition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblationComposition()
		if len(r.Rows) != 5 {
			b.Fatal("bad rows")
		}
	}
}

func BenchmarkAblation_PEPSVariants(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPEPS(l, l.Modest, 100, benchProfileCap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_PairCache(b *testing.B) {
	l := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPairCache(l, l.Modest, 10); err != nil {
			b.Fatal(err)
		}
	}
}
