// Quickstart: build a HYPRE system over the synthetic DBLP network, record
// a handful of preferences by hand, and ask for personalized Top-K results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hypre/internal/core"
	"hypre/internal/workload"
)

func main() {
	// 1. A dataset. NewSystem generates a small DBLP-like citation network;
	// use core.NewSystemOver to plug in your own tables instead.
	cfg := workload.DefaultConfig()
	cfg.NumPapers = 1000
	cfg.NumAuthors = 300
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Preferences. Quantitative: a predicate plus an intensity in
	// [-1, 1]. Qualitative: "left is preferred over right" plus a strength
	// in [0, 1]. Negative intensities express dislike.
	const me = int64(7)
	check(sys.AddQuantitative(me, `dblp.venue="VLDB"`, 0.8))
	check(sys.AddQuantitative(me, `dblp.venue="SIGMOD"`, 0.5))
	check(sys.AddQuantitative(me, `dblp.venue="INFOCOM"`, -0.6))
	check(sys.AddQuantitative(me, `dblp.year>=2010`, 0.4))
	// "I like PODS a bit more than ICDE" — neither venue has a score yet;
	// HYPRE seeds one and derives the other (Eq. 4.1/4.2).
	if _, err := sys.AddQualitative(me, `dblp.venue="PODS"`, `dblp.venue="ICDE"`, 0.3); err != nil {
		log.Fatal(err)
	}

	// 3. The converted profile: every preference now carries an intensity,
	// including the two that arrived only qualitatively.
	fmt.Println("profile (descending intensity):")
	for _, p := range sys.Profile(me) {
		fmt.Printf("  %+0.4f  %s\n", p.Intensity, p.Pred)
	}

	// 4. The §4.6 query rewrite: OR within an attribute, AND across.
	text, intensity := sys.EnhancedQuery(me, 0)
	fmt.Printf("\nenhanced WHERE (intensity %.4f):\n  %s\n", intensity, text)

	// 5. Personalized Top-K via PEPS.
	top, err := sys.TopK(me, 5, core.Complete)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 papers:")
	for i, t := range top {
		row, _ := sys.TupleByKey("dblp", "pid", t.PID)
		fmt.Printf("  %d. %.4f  %s\n", i+1, t.Intensity,
			core.DescribeTuple(row, "venue", "year", "title"))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
