// Skyline demonstrates §1.4's observation that attribute-based preferences
// ("I want the cheapest hotel that is close to the beach", with price more
// important than distance) can be expressed in the predicate-based HYPRE
// graph: each attribute's "good" region becomes a ladder of predicate
// nodes, and a qualitative edge ranks the attributes against each other.
//
//	go run ./examples/skyline
package main

import (
	"fmt"
	"log"

	"hypre/internal/core"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

func main() {
	db := relstore.NewDB()
	tbl, err := db.CreateTable("hotels",
		relstore.Column{Name: "id", Kind: predicate.KindInt},
		relstore.Column{Name: "name", Kind: predicate.KindString},
		relstore.Column{Name: "price", Kind: predicate.KindInt},
		relstore.Column{Name: "distance", Kind: predicate.KindInt}, // meters to beach
	)
	if err != nil {
		log.Fatal(err)
	}
	hotels := []struct {
		id              int64
		name            string
		price, distance int64
	}{
		{1, "Budget Beach", 60, 150},
		{2, "Mid Mare", 110, 80},
		{3, "Grand Luxe", 260, 40},
		{4, "Cheap Inland", 45, 2100},
		{5, "Fair Deal", 95, 400},
		{6, "Pricey Far", 240, 1800},
	}
	for _, h := range hotels {
		if _, err := tbl.Insert(predicate.Int(h.id), predicate.String(h.name),
			predicate.Int(h.price), predicate.Int(h.distance)); err != nil {
			log.Fatal(err)
		}
	}

	base := func(w predicate.Predicate) relstore.Query {
		return relstore.Query{From: "hotels", Where: w}
	}
	sys := core.NewSystemOver(db, base, "hotels.id")
	const traveler = int64(1)

	// The attribute preference <price, min> becomes a predicate ladder:
	// cheaper buckets carry higher intensity.
	must(sys.AddQuantitative(traveler, `price<=80`, 0.9))
	must(sys.AddQuantitative(traveler, `price<=150`, 0.5))
	must(sys.AddQuantitative(traveler, `price<=300`, 0.1))
	// Likewise <distance, min>.
	must(sys.AddQuantitative(traveler, `distance<=100`, 0.7))
	must(sys.AddQuantitative(traveler, `distance<=500`, 0.4))
	must(sys.AddQuantitative(traveler, `distance<=2500`, 0.05))
	// "Price is more important than distance": a qualitative edge between
	// the two ladders' top rungs. The conflict machinery keeps the order
	// consistent.
	if _, err := sys.AddQualitative(traveler, `price<=80`, `distance<=100`, 0.2); err != nil {
		log.Fatal(err)
	}

	top, err := sys.TopK(traveler, 6, core.Complete)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("skyline-style ranking (price dominates distance):")
	for i, t := range top {
		row, _ := sys.TupleByKey("hotels", "id", t.PID)
		fmt.Printf("  %d. %.4f  %s\n", i+1, t.Intensity,
			core.DescribeTuple(row, "name", "price", "distance"))
	}

	// Sanity of the skyline shape: the cheap-and-close hotel must beat the
	// expensive-and-close one, and the cheap-but-far one must beat the
	// expensive-and-far one.
	rank := map[int64]int{}
	for i, t := range top {
		rank[t.PID] = i
	}
	if rank[1] > rank[3] {
		log.Fatal("Budget Beach should beat Grand Luxe")
	}
	if rank[4] > rank[6] {
		log.Fatal("Cheap Inland should beat Pricey Far")
	}
	fmt.Println("\ndominance checks passed: cheaper hotels outrank pricier ones at")
	fmt.Println("comparable distance, matching the skyline the user asked for.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
