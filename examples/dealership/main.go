// Dealership reproduces the running example of §2.5 / §4.6.1 (Tables 5, 8
// and 9): three car preferences with different intensities, where
// Preference SQL returns the order t1, t3, t2 but the intensity-aware HYPRE
// model returns the expected t1, t2, t3.
//
//	go run ./examples/dealership
package main

import (
	"fmt"
	"log"

	"hypre/internal/core"
	"hypre/internal/predicate"
	"hypre/internal/prefsql"
	"hypre/internal/relstore"
)

func main() {
	// The dealership relation of Table 8.
	db := relstore.NewDB()
	tbl, err := db.CreateTable("dealership",
		relstore.Column{Name: "id", Kind: predicate.KindInt},
		relstore.Column{Name: "price", Kind: predicate.KindInt},
		relstore.Column{Name: "mileage", Kind: predicate.KindInt},
		relstore.Column{Name: "make", Kind: predicate.KindString},
	)
	if err != nil {
		log.Fatal(err)
	}
	cars := []struct {
		id, price, mileage int64
		make_              string
	}{
		{1, 7000, 43489, "Honda"},
		{2, 16000, 35334, "VW"},
		{3, 20000, 49119, "Honda"},
	}
	for _, c := range cars {
		if _, err := tbl.Insert(predicate.Int(c.id), predicate.Int(c.price),
			predicate.Int(c.mileage), predicate.String(c.make_)); err != nil {
			log.Fatal(err)
		}
	}

	base := func(w predicate.Predicate) relstore.Query {
		return relstore.Query{From: "dealership", Where: w}
	}
	sys := core.NewSystemOver(db, base, "dealership.id")

	// Example 6's preferences with intensities.
	const buyer = int64(1)
	must(sys.AddQuantitative(buyer, `price BETWEEN 7000 AND 16000`, 0.8))
	must(sys.AddQuantitative(buyer, `mileage BETWEEN 20000 AND 50000`, 0.5))
	must(sys.AddQuantitative(buyer, `make IN ("BMW","Honda")`, 0.2))

	fmt.Println("preferences:")
	for _, p := range sys.Profile(buyer) {
		fmt.Printf("  %0.1f  %s\n", p.Intensity, p.Pred)
	}

	top, err := sys.TopK(buyer, 3, core.Complete)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHYPRE ranking (Table 9):")
	for i, t := range top {
		row, _ := sys.TupleByKey("dealership", "id", t.PID)
		fmt.Printf("  %d. t%d  intensity %.2f  (%s)\n", i+1, t.PID, t.Intensity,
			core.DescribeTuple(row, "price", "mileage", "make"))
	}
	if top[0].PID != 1 || top[1].PID != 2 || top[2].PID != 3 {
		log.Fatalf("unexpected ranking: %+v", top)
	}
	fmt.Println("\nexpected order t1 > t2 > t3 confirmed.")

	// Now the same preferences through Preference SQL (§2.5's PREFERRING
	// clause) — which has no intensities, only a partial order.
	price := prefsql.Between{Attr: "price", Lo: 7000, Hi: 16000}
	mileage := prefsql.Between{Attr: "mileage", Lo: 20000, Hi: 50000}
	makeP := prefsql.In("make", predicate.String("BMW"), predicate.String("Honda"))
	pareto := prefsql.And(price, mileage, makeP)
	res, err := prefsql.Evaluate(db, relstore.Query{From: "dealership"}, pareto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPreference SQL, PREFERRING %s:\n", pareto)
	for li, level := range res.Levels {
		fmt.Printf("  BMO level %d:", li)
		for _, r := range level {
			v, _ := r.Get("id")
			fmt.Printf(" t%d", v.AsInt())
		}
		fmt.Println()
	}
	if lv2, lv3 := res.LevelOf("id", predicate.Int(2)), res.LevelOf("id", predicate.Int(3)); lv2 != lv3 {
		log.Fatalf("expected t2 and t3 tied under Pareto, got levels %d/%d", lv2, lv3)
	}
	fmt.Println("\nt2 and t3 land in the same BMO level: without intensity, Preference")
	fmt.Println("SQL cannot decide between them — the ambiguity HYPRE resolves above.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
