// Movienight combines three pieces the dissertation's background chapter
// surveys and its future-work section targets: contextual preferences
// (Definition 11 / Fig. 2), a CP-net (Definition 12 / Fig. 3), and HYPRE
// group profiles (§8.2). A household picks a movie: the current context
// selects which preferences apply, the CP-net orders genre/director
// combinations, and the group profile merges the members' intensities for
// the final personalized Top-K.
//
//	go run ./examples/movienight
package main

import (
	"fmt"
	"log"

	"hypre/internal/core"
	"hypre/internal/cpnet"
	"hypre/internal/ctxpref"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

func main() {
	// --- The movie relation (Table 3, extended). ---
	db := relstore.NewDB()
	tbl, err := db.CreateTable("movies",
		relstore.Column{Name: "mid", Kind: predicate.KindInt},
		relstore.Column{Name: "title", Kind: predicate.KindString},
		relstore.Column{Name: "year", Kind: predicate.KindInt},
		relstore.Column{Name: "director", Kind: predicate.KindString},
		relstore.Column{Name: "genre", Kind: predicate.KindString},
	)
	if err != nil {
		log.Fatal(err)
	}
	movies := []struct {
		mid             int64
		title           string
		year            int64
		director, genre string
	}{
		{1, "Casablanca", 1942, "M.Curtiz", "drama"},
		{2, "Psycho", 1960, "A.Hitchcock", "horror"},
		{3, "Schindler's List", 1993, "S.Spielberg", "drama"},
		{4, "White Christmas", 1954, "M.Curtiz", "comedy"},
		{5, "The Adventures of Tintin", 2011, "S.Spielberg", "comedy"},
		{6, "Annie Hall", 1977, "W.Allen", "comedy"},
		{7, "Match Point", 2005, "W.Allen", "drama"},
	}
	for _, m := range movies {
		tbl.Insert(predicate.Int(m.mid), predicate.String(m.title),
			predicate.Int(m.year), predicate.String(m.director), predicate.String(m.genre))
	}

	// --- 1. Context: what applies tonight? ---
	company := ctxpref.NewHierarchy("company")
	must(company.Add("friends", ctxpref.All))
	must(company.Add("family", ctxpref.All))
	weather := ctxpref.NewHierarchy("weather")
	must(weather.Add("good", ctxpref.All))
	must(weather.Add("rainy", ctxpref.All))
	model := ctxpref.NewModel(company, weather)

	entries := []ctxpref.Entry{
		{State: ctxpref.State{"friends", "rainy"}, Pref: sp(`genre="comedy"`, 0.9)},
		{State: ctxpref.State{"family", ctxpref.All}, Pref: sp(`genre="drama"`, 0.7)},
		{State: ctxpref.State{ctxpref.All, "rainy"}, Pref: sp(`year>=1970`, 0.4)},
		{State: ctxpref.State{ctxpref.All, ctxpref.All}, Pref: sp(`genre="horror"`, -0.5)},
	}
	cg, err := ctxpref.Build(model, entries)
	if err != nil {
		log.Fatal(err)
	}
	tonight := ctxpref.State{"friends", "rainy"}
	ctxPrefs, err := cg.Resolve(tonight)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context %v activates %d preferences (most specific first):\n", tonight, len(ctxPrefs))
	for _, p := range ctxPrefs {
		fmt.Printf("  %+0.2f  %s\n", p.Intensity, p.Pred)
	}

	// --- 2. CP-net: conditional taste (Fig. 3). ---
	n := cpnet.New()
	must(n.AddAttr("genre", "comedy", "drama"))
	must(n.AddAttr("director", "W.Allen", "M.Curtiz"))
	must(n.SetParents("director", "genre"))
	must(n.SetCPT("genre", nil, "comedy", "drama"))
	must(n.SetCPT("director", map[string]string{"genre": "comedy"}, "W.Allen", "M.Curtiz"))
	must(n.SetCPT("director", map[string]string{"genre": "drama"}, "M.Curtiz", "W.Allen"))
	order, err := n.Order()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCP-net outcome order (ceteris paribus):")
	for i, o := range order {
		fmt.Printf("  %d. %s by %s\n", i+1, o["genre"], o["director"])
	}

	// --- 3. Group profile: merge the household's tastes in HYPRE. ---
	base := func(w predicate.Predicate) relstore.Query {
		return relstore.Query{From: "movies", Where: w}
	}
	sys := core.NewSystemOver(db, base, "movies.mid")
	// Ana (1) follows tonight's context; the CP-net's top outcomes become
	// her qualitative edge.
	for _, p := range ctxPrefs {
		must(sys.AddQuantitative(1, p.Pred, p.Intensity))
	}
	if _, err := sys.AddQualitative(1, `director="W.Allen"`, `director="M.Curtiz"`, 0.3); err != nil {
		log.Fatal(err)
	}
	// Ben (2) is a Spielberg drama person who dislikes old movies.
	must(sys.AddQuantitative(2, `director="S.Spielberg"`, 0.8))
	must(sys.AddQuantitative(2, `genre="drama"`, 0.5))
	must(sys.AddQuantitative(2, `year<1960`, -0.4))

	group, err := sys.Graph.GroupProfile([]int64{1, 2}, hypre.GroupAverage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngroup profile (average strategy):")
	for _, p := range group {
		fmt.Printf("  %+0.3f  %s\n", p.Intensity, p.Pred)
	}

	top, err := sys.GroupTopK([]int64{1, 2}, hypre.GroupAverage, 3, core.Complete)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntonight's top-3 for the household:")
	for i, t := range top {
		row, _ := sys.TupleByKey("movies", "mid", t.PID)
		fmt.Printf("  %d. %.4f  %s\n", i+1, t.Intensity,
			core.DescribeTuple(row, "title", "genre", "director", "year"))
	}
	if len(top) == 0 {
		log.Fatal("no recommendation")
	}
}

func sp(pred string, in float64) hypre.ScoredPred {
	p, err := hypre.NewScoredPred(pred, in)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
