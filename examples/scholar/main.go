// Scholar is the full Chapter 6 pipeline as an application: generate a
// citation network, extract every user's preferences from their publishing
// and citing behaviour, build the multi-user HYPRE graph, and compare
// personalized PEPS results against the Fagin TA baseline for one scholar —
// the Figs. 37/38 story at example scale.
//
//	go run ./examples/scholar
package main

import (
	"fmt"
	"log"

	"hypre/internal/core"
	"hypre/internal/metrics"
	"hypre/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.NumPapers = 2000
	cfg.NumAuthors = 600
	sys, prefs, err := core.NewSystemWithWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the "rich" exemplar scholar (the paper's uid=2 stand-in).
	uid, _ := prefs.PickUsers(170, 50)
	qt, ql := prefs.UserPrefs(uid)
	fmt.Printf("scholar uid=%d: %d quantitative + %d qualitative extracted preferences\n",
		uid, len(qt), len(ql))

	prof := sys.Profile(uid)
	fmt.Printf("converted profile: %d usable preferences\n\n", len(prof))

	const k = 100
	peps, err := sys.TopK(uid, k, core.Complete)
	if err != nil {
		log.Fatal(err)
	}
	ta, err := sys.TopKBaseline(uid, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s %-34s %-20s\n", "rank", "PEPS (hybrid profile)", "TA (quantitative only)")
	for i := 0; i < k && (i < len(peps) || i < len(ta)); i++ {
		var l, r string
		if i < len(peps) {
			row, _ := sys.TupleByKey("dblp", "pid", peps[i].PID)
			l = fmt.Sprintf("%.4f %s", peps[i].Intensity, core.DescribeTuple(row, "venue", "year"))
		}
		if i < len(ta) {
			r = fmt.Sprintf("%.4f pid=%d", ta[i].Intensity, ta[i].PID)
		}
		fmt.Printf("%-4d %-34s %-20s\n", i+1, l, r)
	}

	sim := metrics.Similarity(metrics.PIDs(peps), metrics.PIDs(ta))
	ovl := metrics.Overlap(metrics.PIDs(peps), metrics.PIDs(ta))
	fmt.Printf("\nsimilarity %.0f%%, pairwise order concordance on shared tuples %.0f%%\n", sim*100, ovl*100)
	fmt.Println("PEPS diverges from TA where qualitative knowledge adds or boosts tuples")
	fmt.Println("TA cannot see; on a purely quantitative profile the two agree exactly")
	fmt.Println("(100% similarity and overlap — see the fig37 experiment).")
}
