module hypre

go 1.24
